//! Portfolio SAT solving: race diversified CDCL configurations on one
//! formula, first definitive answer wins.
//!
//! Modern SAT practice cuts the long tail of hard instances not by a
//! better single heuristic but by running several differently-tuned
//! solvers at once — restart cadence, activity decay, and initial
//! polarity interact chaotically with instance structure, so *some*
//! configuration usually finishes far earlier than the median. The
//! [`PortfolioEngine`] packages that as a drop-in [`SatEngine`]: it
//! maintains N clause-identical [`Solver`] members built from
//! [`diversified_configs`], answers every `solve_with` call by racing
//! the members over [`alice_par::race`] (losers observe the shared
//! [`CancelToken`] inside their CDCL loop and stop within one
//! propagation round), and serves model reads from the winner.
//!
//! Soundness: every member solves the *same* formula, and every
//! [`SolverConfig`] knob steers only heuristics, so any definitive
//! verdict is correct no matter which member produced it — racing never
//! changes SAT/UNSAT answers, only wall-clock and witnesses.
//! [`SatResult::Unknown`] is returned only when *every* member exhausted
//! its conflict budget, preserving budget-exhaustion semantics.

use crate::engine::{CancelToken, EngineStats, SatEngine};
use crate::solver::{Lit, SatResult, Solver, SolverConfig, Var};
use alice_intern::Symbol;
use alice_par::race;
use std::sync::Mutex;

/// Produces `n` heuristic configurations for a portfolio race.
///
/// Config 0 is always [`SolverConfig::default`] — the historical
/// single-solver behavior is a member of every portfolio, so a race can
/// only add alternatives, never lose the baseline trajectory. Later
/// configs cycle through aggressive/conservative VSIDS decay, short/long
/// Luby restart bases, inverted initial polarity, and distinct activity
/// perturbation seeds.
pub fn diversified_configs(n: usize) -> Vec<SolverConfig> {
    const DECAY: [f64; 4] = [0.90, 0.975, 0.85, 0.999];
    const RESTART: [u64; 4] = [100, 256, 32, 512];
    (0..n.max(1))
        .map(|i| {
            if i == 0 {
                SolverConfig::default()
            } else {
                let k = (i - 1) % 4;
                SolverConfig {
                    var_decay: DECAY[k],
                    restart_base: RESTART[k],
                    invert_phase: i % 2 == 1,
                    seed: 0xA11C_E000_0000_0000 | i as u64,
                }
            }
        })
        .collect()
}

/// Per-run statistics of a portfolio engine: how often each config won
/// and how much search effort the winners spent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Number of racing configurations.
    pub configs: usize,
    /// Definitive answers produced per config index.
    pub wins: Vec<u64>,
    /// Conflicts spent by winning members on their winning calls.
    pub conflicts: u64,
    /// Clauses learned by winning members on their winning calls.
    pub learned: u64,
}

impl PortfolioStats {
    /// Win counts as a compact `w0/w1/…` string for table cells.
    pub fn wins_summary(&self) -> String {
        self.wins
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("/")
    }
}

/// A [`SatEngine`] racing N diversified CDCL members (see module docs).
pub struct PortfolioEngine {
    members: Vec<Mutex<Solver>>,
    wins: Vec<u64>,
    /// Member whose model the last `Sat` answer is served from.
    last_winner: usize,
    stats: EngineStats,
    budget: Option<u64>,
    cancel: Option<CancelToken>,
}

impl PortfolioEngine {
    /// A portfolio of `n` members over [`diversified_configs`] (`n` is
    /// clamped to at least 1; config 0 is the historical default).
    pub fn new(n: usize) -> Self {
        Self::with_configs(diversified_configs(n))
    }

    /// A portfolio over explicit configurations.
    pub fn with_configs(configs: Vec<SolverConfig>) -> Self {
        let members: Vec<Mutex<Solver>> = configs
            .into_iter()
            .map(|c| Mutex::new(Solver::with_config(c)))
            .collect();
        let n = members.len().max(1);
        PortfolioEngine {
            members,
            wins: vec![0; n],
            last_winner: 0,
            stats: EngineStats::default(),
            budget: None,
            cancel: None,
        }
    }

    /// Number of racing members.
    pub fn configs(&self) -> usize {
        self.members.len()
    }

    /// Statistics snapshot: per-config win counts plus winner effort.
    pub fn portfolio_stats(&self) -> PortfolioStats {
        PortfolioStats {
            configs: self.members.len(),
            wins: self.wins.clone(),
            conflicts: self.stats.conflicts,
            learned: self.stats.learned,
        }
    }

    fn member_stats(&self, i: usize) -> EngineStats {
        self.members[i].lock().expect("member poisoned").stats()
    }

    /// Folds the winning member's effort delta into the engine-level
    /// stats (winner-only attribution, field by field).
    fn credit(&mut self, after: EngineStats, before: EngineStats) {
        self.stats.conflicts += after.conflicts - before.conflicts;
        self.stats.learned += after.learned - before.learned;
        self.stats.propagations += after.propagations - before.propagations;
        self.stats.restarts += after.restarts - before.restarts;
        self.stats.assumption_solves += after.assumption_solves - before.assumption_solves;
        self.stats.learned_kept += after.learned_kept - before.learned_kept;
        self.stats.learned_dropped += after.learned_dropped - before.learned_dropped;
    }
}

impl SatEngine for PortfolioEngine {
    fn new_var(&mut self) -> Var {
        // Every member MUST allocate (an iterator would be dangerously
        // lazy here): clause replication relies on identical numbering.
        let mut v: Option<Var> = None;
        for m in &mut self.members {
            let w = m.get_mut().expect("member poisoned").new_var();
            debug_assert!(v.is_none_or(|p| p == w), "members diverged on variables");
            v = Some(w);
        }
        v.expect("at least one member")
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        for m in &mut self.members {
            m.get_mut().expect("member poisoned").add_clause(lits);
        }
    }

    fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return SatResult::Unknown;
            }
        }
        let n = self.members.len();
        for m in &mut self.members {
            m.get_mut().expect("member poisoned").conflict_budget = self.budget;
        }
        if n == 1 {
            // Degenerate portfolio: solve inline, no race overhead.
            let before = self.member_stats(0);
            let r = self.members[0]
                .get_mut()
                .expect("member poisoned")
                .solve_with(assumptions);
            let after = self.member_stats(0);
            if r != SatResult::Unknown {
                self.wins[0] += 1;
                self.credit(after, before);
            }
            self.last_winner = 0;
            return r;
        }
        let before: Vec<EngineStats> = (0..n).map(|i| self.member_stats(i)).collect();
        let members = &self.members;
        let won = race(n, n, |i, token| {
            let mut m = members[i].lock().expect("member poisoned");
            m.set_cancel(Some(token.clone()));
            let r = m.solve_with(assumptions);
            m.set_cancel(None);
            // Unknown means cancelled or budget-exhausted: not an answer.
            (r != SatResult::Unknown).then_some(r)
        });
        match won {
            Some((i, r)) => {
                let after = self.member_stats(i);
                self.wins[i] += 1;
                self.credit(after, before[i]);
                self.last_winner = i;
                r
            }
            // Every member exhausted its budget (or the race was
            // cancelled from outside): budget-exhaustion propagates.
            None => SatResult::Unknown,
        }
    }

    fn reset_to_root(&mut self) {
        // Coherent member reset between assumption solves: EVERY member
        // unwinds to decision level 0 (not just the last winner), so
        // the next race starts all racers from an equivalent root state
        // — a loser cancelled mid-search already unwound itself, and
        // this makes that guarantee unconditional.
        for m in &mut self.members {
            m.get_mut().expect("member poisoned").reset_to_root();
        }
    }

    fn value(&self, v: Var) -> Option<bool> {
        self.members[self.last_winner]
            .lock()
            .expect("member poisoned")
            .value(v)
    }

    fn num_vars(&self) -> usize {
        self.members[0].lock().expect("member poisoned").num_vars()
    }

    fn num_clauses(&self) -> usize {
        // Learned clauses differ per member; report the winner's view.
        self.members[self.last_winner]
            .lock()
            .expect("member poisoned")
            .num_clauses()
    }

    fn budget(&self) -> Option<u64> {
        self.budget
    }

    fn set_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        // Checked on entry to each solve call; a race in flight finishes
        // its current answer before the outer cancellation is observed.
        self.cancel = cancel;
    }

    fn label(&mut self, v: Var, name: Symbol) {
        for m in &mut self.members {
            m.get_mut().expect("member poisoned").label(v, name);
        }
    }

    fn name_of(&self, v: Var) -> Option<Symbol> {
        self.members[0].lock().expect("member poisoned").name_of(v)
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pigeonhole(s: &mut dyn SatEngine, pigeons: usize, holes: usize) -> Vec<Vec<Var>> {
        let p: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            s.add_clause(&row.iter().map(|&v| Lit::pos(v)).collect::<Vec<_>>());
        }
        for i1 in 0..pigeons {
            for i2 in (i1 + 1)..pigeons {
                for (&x, &y) in p[i1].iter().zip(&p[i2]) {
                    s.add_clause(&[Lit::neg(x), Lit::neg(y)]);
                }
            }
        }
        p
    }

    #[test]
    fn config_zero_is_always_the_default() {
        for n in 1..6 {
            assert_eq!(diversified_configs(n)[0], SolverConfig::default());
            assert_eq!(diversified_configs(n).len(), n);
        }
        // Later configs are pairwise distinct within a cycle.
        let c = diversified_configs(5);
        for i in 1..5 {
            for j in (i + 1)..5 {
                assert_ne!(c[i], c[j], "configs {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn portfolio_agrees_with_brute_truth_on_pigeonhole() {
        let mut e = PortfolioEngine::new(3);
        pigeonhole(&mut e, 5, 4);
        assert_eq!(e.solve(), SatResult::Unsat);
        let mut e = PortfolioEngine::new(3);
        let p = pigeonhole(&mut e, 4, 4);
        assert_eq!(e.solve(), SatResult::Sat);
        // The winner's model is a real assignment: every pigeon placed.
        for row in &p {
            assert!(row.iter().any(|&v| e.value(v) == Some(true)));
        }
        let stats = e.portfolio_stats();
        assert_eq!(stats.configs, 3);
        assert_eq!(stats.wins.iter().sum::<u64>(), 1, "one definitive call");
        assert_eq!(stats.wins_summary().split('/').count(), 3);
    }

    #[test]
    fn incremental_assumptions_work_across_races() {
        let mut e = PortfolioEngine::new(4);
        let a = e.new_var();
        let b = e.new_var();
        e.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        e.add_clause(&[Lit::neg(a), Lit::pos(b)]);
        assert_eq!(e.solve_with(&[Lit::neg(b)]), SatResult::Unsat);
        assert_eq!(e.solve_with(&[Lit::pos(a)]), SatResult::Sat);
        assert_eq!(e.value(b), Some(true));
        e.add_clause(&[Lit::neg(b)]);
        assert_eq!(e.solve(), SatResult::Unsat);
    }

    #[test]
    fn coherent_reset_between_assumption_solves() {
        // A long run of alternating assumption solves with explicit
        // resets: every answer must stay correct, and the engine-level
        // stats must see the incremental calls.
        let mut e = PortfolioEngine::new(3);
        let sel = e.new_var();
        let p = pigeonhole_relaxed(&mut e, sel, 4, 3);
        for _ in 0..3 {
            assert_eq!(e.solve_with(&[Lit::pos(sel)]), SatResult::Unsat);
            e.reset_to_root();
            assert_eq!(e.solve_with(&[Lit::neg(sel)]), SatResult::Sat);
            // The winner's model is readable before the reset (sel may
            // be a root implication by now — the formula entails !sel —
            // but the pigeon variables are genuine search assignments)…
            assert_eq!(e.value(sel), Some(false));
            assert!(p.iter().flatten().all(|&v| e.value(v).is_some()));
            e.reset_to_root();
            // …and gone after it (coherently across members): no pigeon
            // placement is implied by the formula alone.
            assert!(p.iter().flatten().all(|&v| e.value(v).is_none()));
        }
        let stats = e.stats();
        assert_eq!(stats.assumption_solves, 6, "winner-attributed calls");
    }

    fn pigeonhole_relaxed(
        s: &mut dyn SatEngine,
        sel: Var,
        pigeons: usize,
        holes: usize,
    ) -> Vec<Vec<Var>> {
        let p: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let mut c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            c.push(Lit::neg(sel));
            s.add_clause(&c);
        }
        for i1 in 0..pigeons {
            for i2 in (i1 + 1)..pigeons {
                for (&x, &y) in p[i1].iter().zip(&p[i2]) {
                    s.add_clause(&[Lit::neg(x), Lit::neg(y)]);
                }
            }
        }
        p
    }

    #[test]
    fn unknown_only_when_every_member_exhausts() {
        // conflict_budget = 0 forces Unknown on any instance that needs
        // even one conflict — every member exhausts, Unknown propagates.
        let mut e = PortfolioEngine::new(3);
        pigeonhole(&mut e, 5, 4);
        e.set_budget(Some(0));
        assert_eq!(e.solve(), SatResult::Unknown);
        // Restoring the budget restores the verdict.
        e.set_budget(None);
        assert_eq!(e.solve(), SatResult::Unsat);
    }

    #[test]
    fn labels_replicate_to_the_winning_member() {
        let mut e = PortfolioEngine::new(2);
        let a = e.new_named_var(Symbol::intern("k[0]"));
        e.add_clause(&[Lit::pos(a)]);
        assert_eq!(e.solve(), SatResult::Sat);
        assert_eq!(e.name_of(a), Some(Symbol::intern("k[0]")));
        assert_eq!(e.value(a), Some(true));
    }
}
