//! The pluggable SAT boundary: every SAT consumer in the flow (CEC
//! miters and sweeping, the verify stage's wrong-key corruption sweep,
//! the oracle-guided attack harness) talks to a [`SatEngine`] instead of
//! a concrete solver, so a single-threaded CDCL search and a racing
//! portfolio are interchangeable behind one interface.
//!
//! The contract mirrors the incremental MiniSat interface the in-tree
//! solver already exposes: variables and clauses accumulate, verdicts
//! are queried under assumptions, models are read back per variable, and
//! a conflict budget turns "too expensive" into [`SatResult::Unknown`]
//! rather than an answer. Two additions make portfolios possible:
//!
//! * [`SatEngine::set_cancel`] installs a shared [`CancelToken`] that
//!   the CDCL search polls every propagation round, so a losing racer
//!   stops well within one restart of the winner finishing, and
//! * [`SatEngine::stats`] reports the conflicts/learned-clause totals
//!   *attributable to returned answers* — for a portfolio, the winners'
//!   work, not the sum of every racer's discarded effort.

use crate::solver::{Lit, SatResult, Solver, Var};
use alice_intern::Symbol;
pub use alice_par::CancelToken;

/// Cumulative search-effort statistics of a [`SatEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Conflicts attributable to returned answers.
    pub conflicts: u64,
    /// Learned clauses (including learned units) attributable to
    /// returned answers.
    pub learned: u64,
    /// Literals dequeued by unit propagation, attributable to returned
    /// answers.
    pub propagations: u64,
}

/// The pluggable incremental SAT interface (see the module docs).
///
/// Implementations must keep the incremental contract of
/// [`Solver`]: clauses persist across calls, [`SatResult::Unsat`] under
/// assumptions leaves the formula usable, and models stay readable until
/// the next mutation.
pub trait SatEngine {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause over existing variables.
    fn add_clause(&mut self, lits: &[Lit]);

    /// Solves the current formula.
    fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves under temporary `assumptions`.
    fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult;

    /// Model value of `v` after a [`SatResult::Sat`] answer.
    fn value(&self, v: Var) -> Option<bool>;

    /// Number of variables.
    fn num_vars(&self) -> usize;

    /// Number of clauses (original + learned).
    fn num_clauses(&self) -> usize;

    /// The conflict budget applied to each solve call.
    fn budget(&self) -> Option<u64>;

    /// Sets the per-call conflict budget (`None` = unlimited).
    fn set_budget(&mut self, budget: Option<u64>);

    /// Installs (or clears) a cooperative cancellation token.
    fn set_cancel(&mut self, cancel: Option<CancelToken>);

    /// Attaches a diagnostic label to `v` (never affects solving).
    fn label(&mut self, v: Var, name: Symbol);

    /// The label of `v`, if any.
    fn name_of(&self, v: Var) -> Option<Symbol>;

    /// Search-effort totals attributable to returned answers.
    fn stats(&self) -> EngineStats;

    /// Allocates a fresh labeled variable.
    fn new_named_var(&mut self, name: Symbol) -> Var {
        let v = self.new_var();
        self.label(v, name);
        v
    }
}

impl SatEngine for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits)
    }

    fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        Solver::solve_with(self, assumptions)
    }

    fn value(&self, v: Var) -> Option<bool> {
        Solver::value(self, v)
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        Solver::num_clauses(self)
    }

    fn budget(&self) -> Option<u64> {
        self.conflict_budget
    }

    fn set_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        Solver::set_cancel(self, cancel)
    }

    fn label(&mut self, v: Var, name: Symbol) {
        Solver::label(self, v, name)
    }

    fn name_of(&self, v: Var) -> Option<Symbol> {
        Solver::name_of(self, v)
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            conflicts: self.total_conflicts,
            learned: self.total_learned,
            propagations: self.total_propagations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_implements_the_engine_boundary() {
        let mut s: Box<dyn SatEngine> = Box::new(Solver::new());
        let a = s.new_named_var(Symbol::intern("a"));
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.add_clause(&[Lit::neg(a)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.name_of(a), Some(Symbol::intern("a")));
        assert_eq!(s.solve_with(&[Lit::neg(b)]), SatResult::Unsat);
        assert!(s.stats().conflicts <= s.stats().learned + s.stats().conflicts);
        assert_eq!(s.budget(), None);
        s.set_budget(Some(5));
        assert_eq!(s.budget(), Some(5));
        assert!(s.num_vars() >= 2 && s.num_clauses() >= 1);
    }
}
