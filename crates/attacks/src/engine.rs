//! The pluggable SAT boundary: every SAT consumer in the flow (CEC
//! miters and sweeping, the verify stage's wrong-key corruption sweep,
//! the oracle-guided attack harness) talks to a [`SatEngine`] instead of
//! a concrete solver, so a single-threaded CDCL search and a racing
//! portfolio are interchangeable behind one interface.
//!
//! The contract mirrors the incremental MiniSat interface the in-tree
//! solver already exposes: variables and clauses accumulate, verdicts
//! are queried under assumptions, models are read back per variable, and
//! a conflict budget turns "too expensive" into [`SatResult::Unknown`]
//! rather than an answer. Two additions make portfolios possible:
//!
//! * [`SatEngine::set_cancel`] installs a shared [`CancelToken`] that
//!   the CDCL search polls every propagation round, so a losing racer
//!   stops well within one restart of the winner finishing, and
//! * [`SatEngine::stats`] reports the conflicts/learned-clause totals
//!   *attributable to returned answers* — for a portfolio, the winners'
//!   work, not the sum of every racer's discarded effort.

use crate::solver::{Lit, SatResult, Solver, Var};
use alice_intern::Symbol;
pub use alice_par::CancelToken;

/// Cumulative search-effort statistics of a [`SatEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Conflicts attributable to returned answers.
    pub conflicts: u64,
    /// Learned clauses (including learned units) attributable to
    /// returned answers.
    pub learned: u64,
    /// Literals dequeued by unit propagation, attributable to returned
    /// answers.
    pub propagations: u64,
    /// Luby restarts attributable to returned answers.
    pub restarts: u64,
    /// `solve_with` calls that carried a non-empty assumption set — the
    /// incremental queries of the keyed-miter CEC path.
    pub assumption_solves: u64,
    /// Learned clauses surviving clause-database reductions, summed
    /// over every reduction pass.
    pub learned_kept: u64,
    /// Learned clauses dropped by clause-database reductions.
    pub learned_dropped: u64,
}

/// The pluggable incremental SAT interface (see the module docs).
///
/// # The incremental contract
///
/// Implementations must keep the incremental contract of [`Solver`],
/// which every consumer of assumption-parameterized solving (the keyed
/// CEC miter, the SAT-sweeper, the attack's lex-min key extraction)
/// relies on:
///
/// * **Clauses persist.** Variables and clauses accumulate across
///   calls; nothing added is ever semantically retracted. Learned
///   clauses may be *dropped* by database reduction, but only ones the
///   formula implies — verdicts and models are unaffected.
/// * **Assumptions are temporary.** `solve_with(assumptions)` answers
///   for the formula *conjoined with* the assumption literals;
///   [`SatResult::Unsat`] under assumptions leaves the formula usable
///   and later calls with different assumptions may be `Sat`. A
///   `solve_with(&[lits...])` call must return exactly the verdict that
///   adding each literal as a unit clause would have produced.
/// * **Heuristic state transfers.** Saved phases, variable activities,
///   and retained learned clauses carry over between calls, so a
///   sequence of related queries (the same miter under N different key
///   assumptions) amortizes search effort instead of restarting cold.
/// * **Models are transient.** A model stays readable until the next
///   mutation or solve; [`SatEngine::reset_to_root`] explicitly unwinds
///   the search to decision level 0 once the caller is done reading.
///   For multi-member engines the reset is *coherent*: every member
///   returns to level 0, so the next assumption solve starts every
///   racer from an equivalent root state.
pub trait SatEngine {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause over existing variables.
    fn add_clause(&mut self, lits: &[Lit]);

    /// Solves the current formula.
    fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves under temporary `assumptions` (see the trait docs for the
    /// incremental contract this must uphold).
    fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult;

    /// Unwinds the search to decision level 0, invalidating any model
    /// but keeping the formula, learned clauses, and heuristic state.
    /// Multi-member engines reset every member, so the next assumption
    /// solve starts coherently from the root.
    fn reset_to_root(&mut self);

    /// Model value of `v` after a [`SatResult::Sat`] answer.
    fn value(&self, v: Var) -> Option<bool>;

    /// Number of variables.
    fn num_vars(&self) -> usize;

    /// Number of clauses (original + learned).
    fn num_clauses(&self) -> usize;

    /// The conflict budget applied to each solve call.
    fn budget(&self) -> Option<u64>;

    /// Sets the per-call conflict budget (`None` = unlimited).
    fn set_budget(&mut self, budget: Option<u64>);

    /// Installs (or clears) a cooperative cancellation token.
    fn set_cancel(&mut self, cancel: Option<CancelToken>);

    /// Attaches a diagnostic label to `v` (never affects solving).
    fn label(&mut self, v: Var, name: Symbol);

    /// The label of `v`, if any.
    fn name_of(&self, v: Var) -> Option<Symbol>;

    /// Search-effort totals attributable to returned answers.
    fn stats(&self) -> EngineStats;

    /// Allocates a fresh labeled variable.
    fn new_named_var(&mut self, name: Symbol) -> Var {
        let v = self.new_var();
        self.label(v, name);
        v
    }
}

impl SatEngine for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits)
    }

    fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        Solver::solve_with(self, assumptions)
    }

    fn reset_to_root(&mut self) {
        Solver::reset_to_root(self)
    }

    fn value(&self, v: Var) -> Option<bool> {
        Solver::value(self, v)
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        Solver::num_clauses(self)
    }

    fn budget(&self) -> Option<u64> {
        self.conflict_budget
    }

    fn set_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        Solver::set_cancel(self, cancel)
    }

    fn label(&mut self, v: Var, name: Symbol) {
        Solver::label(self, v, name)
    }

    fn name_of(&self, v: Var) -> Option<Symbol> {
        Solver::name_of(self, v)
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            conflicts: self.total_conflicts,
            learned: self.total_learned,
            propagations: self.total_propagations,
            restarts: self.total_restarts,
            assumption_solves: self.total_assumption_solves,
            learned_kept: self.total_learned_kept,
            learned_dropped: self.total_learned_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_implements_the_engine_boundary() {
        let mut s: Box<dyn SatEngine> = Box::new(Solver::new());
        let a = s.new_named_var(Symbol::intern("a"));
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.add_clause(&[Lit::neg(a)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.name_of(a), Some(Symbol::intern("a")));
        assert_eq!(s.solve_with(&[Lit::neg(b)]), SatResult::Unsat);
        assert!(s.stats().conflicts <= s.stats().learned + s.stats().conflicts);
        assert_eq!(s.budget(), None);
        s.set_budget(Some(5));
        assert_eq!(s.budget(), Some(5));
        assert!(s.num_vars() >= 2 && s.num_clauses() >= 1);
    }
}
