//! Oracle-guided SAT attack on eFPGA-redacted logic.
//!
//! Implements the attack of Subramanyan et al. (reference \[16\] of the
//! paper) against a redacted cluster: the attacker knows the fabric
//! netlist (LUT topology) but not the configuration bitstream, and owns a
//! fully-scanned unlocked chip as an oracle. The LUT truth-table bits are
//! the key; the attack finds distinguishing input patterns (DIPs) until
//! the key space collapses, then extracts a functionally-correct
//! bitstream.
//!
//! Routing bits are fixed in our fabric model (see `alice-fabric`), so the
//! key is exactly the truth-table portion of the bitstream — consistent
//! with the LUT-oriented security analyses the paper builds on [3, 4].

use crate::engine::SatEngine;
use crate::oracle::{query, OracleResponse};
use crate::portfolio::{PortfolioEngine, PortfolioStats};
use crate::solver::{Lit, SatResult, Solver, Var};
use alice_intern::Symbol;
use alice_netlist::lutmap::{MappedNetlist, MappedSrc};
use std::collections::HashMap;
use std::time::Instant;

/// One distinguishing input pattern found by the attack, recorded in
/// oracle order (primary inputs by [`MappedNetlist::input_names`], state
/// by `dff_names`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dip {
    /// Primary-input bits.
    pub pi: Vec<bool>,
    /// Scan-state bits.
    pub state: Vec<bool>,
}

impl Dip {
    /// The primary-input assignment paired with the network's interned
    /// port-bit names.
    pub fn named_inputs(&self, mapped: &MappedNetlist) -> Vec<(Symbol, bool)> {
        mapped
            .input_names
            .iter()
            .copied()
            .zip(self.pi.iter().copied())
            .collect()
    }

    /// The state assignment paired with the network's register-bit names.
    pub fn named_state(&self, mapped: &MappedNetlist) -> Vec<(Symbol, bool)> {
        mapped
            .dff_names
            .iter()
            .copied()
            .zip(self.state.iter().copied())
            .collect()
    }
}

/// Interned names for every key bit of the network, in exactly the
/// concatenated per-LUT order of [`AttackReport::key_bits`] and of the
/// recovered truth tables: `lut{i}[{p}]` is truth-table bit `p` of the
/// `i`-th mapped LUT. The same bits, deployed on a fabric, surface as
/// the `cfg[p]` registers that `alice_core::redact`'s verify binding
/// pins — these names are the attack-side ledger of that key space.
pub fn key_bit_names(mapped: &MappedNetlist) -> Vec<Symbol> {
    mapped
        .luts
        .iter()
        .enumerate()
        .flat_map(|(i, l)| {
            (0..(1usize << l.inputs.len())).map(move |p| Symbol::intern(&format!("lut{i}[{p}]")))
        })
        .collect()
}

/// Outcome of a SAT attack run.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackStatus {
    /// A functionally-correct bitstream was recovered.
    KeyRecovered {
        /// Recovered truth tables, one per LUT.
        keys: Vec<Vec<bool>>,
    },
    /// The budget ran out before the key space collapsed.
    Resilient,
}

/// Statistics of a SAT attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Final status.
    pub status: AttackStatus,
    /// Number of distinguishing input patterns found.
    pub dips: usize,
    /// Key length in bits (truth-table bits of the cluster).
    pub key_bits: usize,
    /// Total solver conflicts.
    pub conflicts: u64,
    /// Wall-clock milliseconds.
    pub millis: u128,
    /// Every distinguishing input pattern, in discovery order (pair with
    /// [`Dip::named_inputs`]/[`Dip::named_state`] for readable traces).
    pub dip_trace: Vec<Dip>,
    /// Portfolio statistics when the attack raced diversified solver
    /// configurations ([`sat_attack_portfolio`] with `n > 1`); `None`
    /// for the classic single-solver attack.
    pub portfolio: Option<PortfolioStats>,
}

/// Attack budget limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackBudget {
    /// Maximum DIP iterations.
    pub max_dips: usize,
    /// Solver conflict budget per call.
    pub conflicts_per_call: u64,
}

impl Default for AttackBudget {
    fn default() -> Self {
        AttackBudget {
            max_dips: 2_000,
            conflicts_per_call: 200_000,
        }
    }
}

/// Per-copy observable bundle (literals, not variables: a constant-fed
/// cone can fold an observable straight down to a key literal).
struct Copy {
    outs: Vec<Lit>,
    next_state: Vec<Lit>,
}

struct Encoder<'a> {
    mapped: &'a MappedNetlist,
    const_true: Var,
    /// Structural hash of encoded LUT cones, shared across every copy
    /// this encoder emits: `(key row, input literals) → output var`.
    /// Key rows are globally unique per (key set, LUT), so `keys[li][0]`
    /// alone identifies both. DIP-replay copies feed constant inputs,
    /// which fold sub-cones to key literals — two DIPs agreeing on a
    /// cone's support therefore reproduce the *same* hash key, and the
    /// second copy reuses the first one's clauses instead of re-emitting
    /// `2·2^k` of them per LUT, iteration after iteration.
    strash: HashMap<(Var, Vec<Lit>), Var>,
}

impl<'a> Encoder<'a> {
    fn new(s: &mut dyn SatEngine, mapped: &'a MappedNetlist) -> Self {
        let const_true = s.new_var();
        s.add_clause(&[Lit::pos(const_true)]);
        Encoder {
            mapped,
            const_true,
            strash: HashMap::new(),
        }
    }

    fn alloc_keys(&self, s: &mut dyn SatEngine) -> Vec<Vec<Var>> {
        self.mapped
            .luts
            .iter()
            .map(|l| {
                (0..(1usize << l.inputs.len()))
                    .map(|_| s.new_var())
                    .collect()
            })
            .collect()
    }

    /// Encodes one circuit copy with the given key variables. `pi` and
    /// `state` supply the input literals (shared variables, or constants
    /// from [`Encoder::fixed_inputs`]). Constant inputs are folded at
    /// encode time: a row contradicted by a constant emits nothing, a
    /// fully-constant LUT *is* its selected key literal, and whatever
    /// still needs clauses is deduplicated through the structural hash.
    fn encode_copy(
        &mut self,
        s: &mut dyn SatEngine,
        keys: &[Vec<Var>],
        pi: &[Lit],
        state: &[Lit],
    ) -> Copy {
        let t = self.const_true;
        let mut lut_lits: Vec<Lit> = Vec::with_capacity(self.mapped.luts.len());
        let src = |v: &MappedSrc, lut_lits: &[Lit]| -> Lit {
            match v {
                MappedSrc::Const(true) => Lit::pos(t),
                MappedSrc::Const(false) => Lit::neg(t),
                MappedSrc::Pi(i) => pi[*i],
                MappedSrc::Lut(i) => lut_lits[*i],
                MappedSrc::Dff(i) => state[*i],
            }
        };
        for (li, lut) in self.mapped.luts.iter().enumerate() {
            let ins: Vec<Lit> = lut.inputs.iter().map(|i| src(i, &lut_lits)).collect();
            // Constant view of each input: the shared `const_true` var is
            // the only root-pinned one, so ±it is the only constant form.
            let consts: Vec<Option<bool>> = ins
                .iter()
                .map(|&l| {
                    if l == Lit::pos(t) {
                        Some(true)
                    } else if l == Lit::neg(t) {
                        Some(false)
                    } else {
                        None
                    }
                })
                .collect();
            if consts.iter().all(Option::is_some) {
                // Fully-constant support: the LUT output is exactly the
                // key bit its inputs select. No clauses, no variable.
                let p = consts
                    .iter()
                    .enumerate()
                    .fold(0usize, |acc, (b, c)| acc | ((c.unwrap() as usize) << b));
                lut_lits.push(Lit::pos(keys[li][p]));
                continue;
            }
            let hkey = (keys[li][0], ins.clone());
            if let Some(&o) = self.strash.get(&hkey) {
                lut_lits.push(Lit::pos(o));
                continue;
            }
            let o = s.new_var();
            'rows: for (p, &kp) in keys[li].iter().enumerate() {
                // match(p) & k_p -> o   and   match(p) & !k_p -> !o
                let mut base: Vec<Lit> = Vec::with_capacity(ins.len() + 2);
                for (b, (&inl, c)) in ins.iter().zip(&consts).enumerate() {
                    let want = (p >> b) & 1 == 1;
                    match c {
                        // Constant agrees with the row: the "differs"
                        // literal is constantly false, drop it.
                        Some(v) if *v == want => {}
                        // Constant contradicts the row: both clauses are
                        // constantly satisfied, skip them.
                        Some(_) => continue 'rows,
                        // literal asserting "input b != bit b of p"
                        None => base.push(if want { inl.negate() } else { inl }),
                    }
                }
                let mut c1 = base.clone();
                c1.push(Lit::neg(kp));
                c1.push(Lit::pos(o));
                s.add_clause(&c1);
                let mut c2 = base;
                c2.push(Lit::pos(kp));
                c2.push(Lit::neg(o));
                s.add_clause(&c2);
            }
            self.strash.insert(hkey, o);
            lut_lits.push(Lit::pos(o));
        }
        let outs = self
            .mapped
            .outputs
            .iter()
            .flat_map(|(_, bits)| bits.iter())
            .map(|b| src(b, &lut_lits))
            .collect();
        let next_state = self
            .mapped
            .dffs
            .iter()
            .map(|d| src(&d.d, &lut_lits))
            .collect();
        Copy { outs, next_state }
    }

    /// Constant input literals (±`const_true`) for a fixed bit pattern —
    /// no fresh variables, no unit clauses, and downstream cones fold.
    fn fixed_inputs(&self, bits: &[bool]) -> Vec<Lit> {
        bits.iter()
            .map(|&b| {
                if b {
                    Lit::pos(self.const_true)
                } else {
                    Lit::neg(self.const_true)
                }
            })
            .collect()
    }

    /// Constrains a copy's observables to the oracle response.
    fn pin_outputs(&self, s: &mut dyn SatEngine, copy: &Copy, resp: &OracleResponse) {
        for (&l, &b) in copy.outs.iter().zip(&resp.outputs) {
            s.add_clause(&[if b { l } else { l.negate() }]);
        }
        for (&l, &b) in copy.next_state.iter().zip(&resp.next_state) {
            s.add_clause(&[if b { l } else { l.negate() }]);
        }
    }
}

/// Runs the oracle-guided SAT attack against `mapped`.
///
/// `mapped`'s own truth tables play the oracle (the unlocked chip); the
/// attacker model sees only the topology. Returns the recovered bitstream
/// or [`AttackStatus::Resilient`] when the budget is exhausted.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "module m(input wire [3:0] a, output wire y); assign y = ^a; endmodule";
/// let f = alice_verilog::parse_source(src)?;
/// let n = alice_netlist::elaborate::elaborate(&f, "m")?;
/// let mapped = alice_netlist::lutmap::map_luts(&n, 4)?;
/// let report = alice_attacks::sat_attack(&mapped, alice_attacks::AttackBudget::default());
/// assert!(matches!(report.status, alice_attacks::AttackStatus::KeyRecovered { .. }));
/// # Ok(())
/// # }
/// ```
pub fn sat_attack(mapped: &MappedNetlist, budget: AttackBudget) -> AttackReport {
    let mut s = Solver::new();
    let mut ks = Solver::new();
    run_attack(mapped, budget, &mut s, &mut ks)
}

/// [`sat_attack`], racing `n` diversified solver configurations inside
/// both the miter and the key engine ([`PortfolioEngine`]); the report's
/// `portfolio` field carries the combined win counts and winner effort.
///
/// `n <= 1` is exactly [`sat_attack`]. Any `n` recovers the same
/// canonical key (see the extraction notes inside the attack loop) —
/// the portfolio changes wall-clock, never answers.
pub fn sat_attack_portfolio(
    mapped: &MappedNetlist,
    budget: AttackBudget,
    n: usize,
) -> AttackReport {
    if n <= 1 {
        return sat_attack(mapped, budget);
    }
    let mut s = PortfolioEngine::new(n);
    let mut ks = PortfolioEngine::new(n);
    let mut report = run_attack(mapped, budget, &mut s, &mut ks);
    let mut stats = s.portfolio_stats();
    let kstats = ks.portfolio_stats();
    for (w, kw) in stats.wins.iter_mut().zip(&kstats.wins) {
        *w += kw;
    }
    stats.conflicts += kstats.conflicts;
    stats.learned += kstats.learned;
    report.portfolio = Some(stats);
    report
}

fn run_attack(
    mapped: &MappedNetlist,
    budget: AttackBudget,
    s: &mut dyn SatEngine,
    ks: &mut dyn SatEngine,
) -> AttackReport {
    let start = Instant::now();
    let key_bits: usize = mapped.luts.iter().map(|l| 1usize << l.inputs.len()).sum();
    let n_st = mapped.dffs.len();

    // Miter engine: two keyed copies over shared inputs, outputs differ.
    s.set_budget(Some(budget.conflicts_per_call));
    let mut enc = Encoder::new(&mut *s, mapped);
    let k1 = enc.alloc_keys(&mut *s);
    let k2 = enc.alloc_keys(&mut *s);
    // The shared miter inputs carry the network's own port and register
    // names, so a satisfying assignment reads back as a named DIP.
    // (`dff_names` is maintained independently of the `dffs` list the
    // encoder sizes copies by, so the lengths genuinely can disagree.)
    debug_assert_eq!(mapped.dff_names.len(), n_st);
    let pi: Vec<Var> = mapped
        .input_names
        .iter()
        .map(|&n| s.new_named_var(n))
        .collect();
    let st: Vec<Var> = mapped
        .dff_names
        .iter()
        .map(|&n| s.new_named_var(n))
        .collect();
    let pi_lits: Vec<Lit> = pi.iter().map(|&v| Lit::pos(v)).collect();
    let st_lits: Vec<Lit> = st.iter().map(|&v| Lit::pos(v)).collect();
    let c1 = enc.encode_copy(&mut *s, &k1, &pi_lits, &st_lits);
    let c2 = enc.encode_copy(&mut *s, &k2, &pi_lits, &st_lits);
    // d_i -> (o1_i xor o2_i); assert OR d_i.
    let mut diff_lits = Vec::new();
    for (&a, &b) in c1
        .outs
        .iter()
        .chain(&c1.next_state)
        .zip(c2.outs.iter().chain(&c2.next_state))
    {
        let d = s.new_var();
        // d -> (a != b)
        s.add_clause(&[Lit::neg(d), a, b]);
        s.add_clause(&[Lit::neg(d), a.negate(), b.negate()]);
        diff_lits.push(Lit::pos(d));
    }
    s.add_clause(&diff_lits);

    // Key engine: accumulates I/O constraints on a single key copy;
    // solved at the end to extract a consistent bitstream.
    ks.set_budget(Some(budget.conflicts_per_call));
    let mut kenc = Encoder::new(&mut *ks, mapped);
    let kk = kenc.alloc_keys(&mut *ks);
    // Key variables carry their truth-table-bit identities, so the key
    // solver's model is the recovered bitstream by name.
    for (&v, name) in kk.iter().flatten().zip(key_bit_names(mapped)) {
        ks.label(v, name);
    }

    let mut dips = 0usize;
    let mut dip_trace: Vec<Dip> = Vec::new();
    loop {
        if dips >= budget.max_dips {
            return AttackReport {
                status: AttackStatus::Resilient,
                dips,
                key_bits,
                conflicts: s.stats().conflicts + ks.stats().conflicts,
                millis: start.elapsed().as_millis(),
                dip_trace,
                portfolio: None,
            };
        }
        match s.solve() {
            SatResult::Unknown => {
                return AttackReport {
                    status: AttackStatus::Resilient,
                    dips,
                    key_bits,
                    conflicts: s.stats().conflicts + ks.stats().conflicts,
                    millis: start.elapsed().as_millis(),
                    dip_trace,
                    portfolio: None,
                }
            }
            SatResult::Unsat => break,
            SatResult::Sat => {
                // Extract the DIP before touching the solver again.
                let dip_pi: Vec<bool> = pi.iter().map(|&v| s.value(v).unwrap_or(false)).collect();
                let dip_st: Vec<bool> = st.iter().map(|&v| s.value(v).unwrap_or(false)).collect();
                let resp = query(mapped, &dip_pi, &dip_st, None);
                dips += 1;
                dip_trace.push(Dip {
                    pi: dip_pi.clone(),
                    state: dip_st.clone(),
                });
                // Both key copies must reproduce the oracle on this DIP.
                for keys in [&k1, &k2] {
                    let fpi = enc.fixed_inputs(&dip_pi);
                    let fst = enc.fixed_inputs(&dip_st);
                    let copy = enc.encode_copy(&mut *s, keys, &fpi, &fst);
                    enc.pin_outputs(&mut *s, &copy, &resp);
                }
                // And the key engine learns the same I/O pair.
                let fpi = kenc.fixed_inputs(&dip_pi);
                let fst = kenc.fixed_inputs(&dip_st);
                let copy = kenc.encode_copy(&mut *ks, &kk, &fpi, &fst);
                kenc.pin_outputs(&mut *ks, &copy, &resp);
            }
        }
    }
    // Key space collapsed: any key satisfying the accumulated I/O pairs
    // is functionally correct. Stronger: since the miter is UNSAT, no two
    // consistent keys differ on any input, and the true key is itself
    // consistent — so the consistent set is exactly the functional
    // equivalence class of the true key, independent of which DIP
    // sequence (or portfolio configuration) got us here. Extracting its
    // lexicographically smallest member in `key_bit_names` order thus
    // yields a canonical bitstream: the same key for `--portfolio 1`
    // and `--portfolio N`.
    let verdict = ks.solve();
    // Snapshot before extraction so the reported effort covers exactly
    // the verdict-producing search.
    let conflicts = s.stats().conflicts + ks.stats().conflicts;
    let status = match verdict {
        SatResult::Sat => {
            // Lex-min per bit, preferring 0. A solve is only needed when
            // the cached witness has a 1 (a witness with a 0 already
            // proves 0 feasible); on Unsat the previous witness still
            // backs every fixed literal, so it stays cached. Budget off:
            // these queries are easy and must not flake a canonical key
            // into a nondeterministic one.
            ks.set_budget(None);
            let order: Vec<Var> = kk.iter().flatten().copied().collect();
            let mut witness: Vec<bool> = order
                .iter()
                .map(|&v| ks.value(v).unwrap_or(false))
                .collect();
            let mut fixed: Vec<Lit> = Vec::with_capacity(order.len());
            for (i, &v) in order.iter().enumerate() {
                if !witness[i] {
                    fixed.push(Lit::neg(v));
                    continue;
                }
                fixed.push(Lit::neg(v));
                if ks.solve_with(&fixed) == SatResult::Sat {
                    for (j, &w) in order.iter().enumerate() {
                        witness[j] = ks.value(w).unwrap_or(false);
                    }
                } else {
                    *fixed.last_mut().expect("just pushed") = Lit::pos(v);
                }
            }
            let mut bits = fixed.iter().map(|l| !l.is_neg());
            let keys: Vec<Vec<bool>> = kk
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|_| bits.next().expect("one per key var"))
                        .collect()
                })
                .collect();
            AttackStatus::KeyRecovered { keys }
        }
        _ => AttackStatus::Resilient,
    };
    AttackReport {
        status,
        dips,
        key_bits,
        conflicts,
        millis: start.elapsed().as_millis(),
        dip_trace,
        portfolio: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::exhaustive_equiv;
    use alice_netlist::elaborate::elaborate;
    use alice_netlist::lutmap::map_luts;
    use alice_verilog::parse_source;

    fn mapped(src: &str, top: &str) -> MappedNetlist {
        let f = parse_source(src).expect("parse");
        let n = elaborate(&f, top).expect("elab");
        map_luts(&n, 4).expect("map")
    }

    #[test]
    fn attack_recovers_single_lut() {
        let m = mapped(
            "module m(input wire [3:0] a, output wire y);\
             assign y = (a[0] & a[1]) | (a[2] ^ a[3]); endmodule",
            "m",
        );
        let r = sat_attack(&m, AttackBudget::default());
        match r.status {
            AttackStatus::KeyRecovered { keys } => {
                assert!(exhaustive_equiv(&m, &keys), "recovered key must match");
            }
            AttackStatus::Resilient => panic!("tiny circuit must break"),
        }
        assert!(r.dips >= 1);
    }

    #[test]
    fn attack_recovers_multi_lut_adder() {
        let m = mapped(
            "module m(input wire [3:0] a, input wire [3:0] b, output wire [4:0] y);\
             assign y = {1'b0, a} + {1'b0, b}; endmodule",
            "m",
        );
        let r = sat_attack(&m, AttackBudget::default());
        match r.status {
            AttackStatus::KeyRecovered { keys } => {
                assert!(exhaustive_equiv(&m, &keys));
            }
            AttackStatus::Resilient => panic!("adder must break"),
        }
        // Key bits: 2^|inputs| per LUT, between 2 and 16 each.
        assert!(r.key_bits >= 2 * m.lut_count());
        assert!(r.key_bits <= 16 * m.lut_count());
    }

    #[test]
    fn attack_handles_sequential_as_scan() {
        let m = mapped(
            "module c(input wire clk, input wire en, output reg [1:0] q);\
             always @(posedge clk) begin if (en) q <= q + 2'd1; end endmodule",
            "c",
        );
        let r = sat_attack(&m, AttackBudget::default());
        match r.status {
            AttackStatus::KeyRecovered { keys } => {
                assert!(exhaustive_equiv(&m, &keys));
            }
            AttackStatus::Resilient => panic!("2-bit counter must break"),
        }
    }

    #[test]
    fn budget_exhaustion_reports_resilient() {
        let m = mapped(
            "module m(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);\
             assign y = a * b; endmodule",
            "m",
        );
        let r = sat_attack(
            &m,
            AttackBudget {
                max_dips: 1,
                conflicts_per_call: 100_000,
            },
        );
        assert_eq!(r.status, AttackStatus::Resilient);
        assert!(r.dips <= 1);
    }

    #[test]
    fn dip_trace_is_named_and_distinguishing() {
        let m = mapped(
            "module m(input wire [3:0] a, output wire y);\
             assign y = (a[0] & a[1]) | (a[2] ^ a[3]); endmodule",
            "m",
        );
        let r = sat_attack(&m, AttackBudget::default());
        assert_eq!(r.dip_trace.len(), r.dips);
        assert!(!r.dip_trace.is_empty());
        for dip in &r.dip_trace {
            let named = dip.named_inputs(&m);
            assert_eq!(named.len(), m.input_names.len());
            // Names come straight from the network's interned ports.
            for ((name, _), want) in named.iter().zip(&m.input_names) {
                assert_eq!(name, want);
            }
            assert!(dip.named_state(&m).is_empty(), "combinational network");
        }
    }

    #[test]
    fn key_bit_names_align_with_recovered_tables() {
        let m = mapped(
            "module m(input wire [3:0] a, output wire y); assign y = ^a; endmodule",
            "m",
        );
        let names = key_bit_names(&m);
        let r = sat_attack(&m, AttackBudget::default());
        assert_eq!(names.len(), r.key_bits);
        // Concatenated per-LUT order: lut{i}[{p}] with p dense per LUT.
        let mut want = Vec::new();
        for (i, l) in m.luts.iter().enumerate() {
            for p in 0..(1usize << l.inputs.len()) {
                want.push(Symbol::intern(&format!("lut{i}[{p}]")));
            }
        }
        assert_eq!(names, want);
    }

    #[test]
    fn portfolio_attack_recovers_the_same_canonical_key() {
        let m = mapped(
            "module m(input wire [3:0] a, input wire [3:0] b, output wire [4:0] y);\
             assign y = {1'b0, a} + {1'b0, b}; endmodule",
            "m",
        );
        let r1 = sat_attack(&m, AttackBudget::default());
        let r1b = sat_attack(&m, AttackBudget::default());
        let r3 = sat_attack_portfolio(&m, AttackBudget::default(), 3);
        let keys = |r: &AttackReport| match &r.status {
            AttackStatus::KeyRecovered { keys } => keys.clone(),
            AttackStatus::Resilient => panic!("adder must break"),
        };
        // Lex-min extraction is canonical: reruns and portfolios agree
        // bit-for-bit, and the canonical key is still correct.
        assert_eq!(keys(&r1), keys(&r1b));
        assert_eq!(keys(&r1), keys(&r3));
        assert!(exhaustive_equiv(&m, &keys(&r3)));
        assert!(r1.portfolio.is_none(), "classic attack reports no race");
        let p = r3.portfolio.expect("portfolio attack reports its race");
        assert_eq!(p.configs, 3);
        assert_eq!(p.wins.len(), 3);
        assert!(p.wins.iter().sum::<u64>() > 0, "someone answered");
    }

    #[test]
    fn dip_replay_copies_fold_and_share_structure() {
        let m = mapped(
            "module m(input wire [3:0] a, input wire [3:0] b, output wire [4:0] y);\
             assign y = {1'b0, a} + {1'b0, b}; endmodule",
            "m",
        );
        let mut s = Solver::new();
        let mut enc = Encoder::new(&mut s, &m);
        let kk = enc.alloc_keys(&mut s);
        let bits: Vec<bool> = (0..m.input_names.len()).map(|i| i % 3 == 0).collect();
        let fpi = enc.fixed_inputs(&bits);
        let c1 = enc.encode_copy(&mut s, &kk, &fpi, &[]);
        let (vars, clauses) = (s.num_vars(), s.num_clauses());
        // Replaying the same DIP against the same key set is a pure
        // structural-hash hit: no new variables, no new clauses, and the
        // observables fold to the very same literals.
        let c2 = enc.encode_copy(&mut s, &kk, &fpi, &[]);
        assert_eq!(s.num_vars(), vars);
        assert_eq!(s.num_clauses(), clauses);
        assert_eq!(c1.outs, c2.outs);
        assert_eq!(c1.next_state, c2.next_state);
    }

    #[test]
    fn key_bits_counted() {
        let m = mapped(
            "module m(input wire [3:0] a, output wire y); assign y = &a; endmodule",
            "m",
        );
        let r = sat_attack(&m, AttackBudget::default());
        assert_eq!(r.key_bits, 16 * m.lut_count());
    }
}
