//! Software oracle: evaluates a mapped LUT network with its true
//! configuration. Stands in for the "fully-scanned and unlocked" chip of
//! the paper's threat model (§2.1) — flip-flops are treated as scan-
//! accessible pseudo-I/O, the standard combinational unrolling used by
//! SAT-attack literature.

use alice_intern::Symbol;
use alice_netlist::lutmap::{MappedNetlist, MappedSrc};

/// Flattened output-bit names of the network, in exactly the order
/// [`OracleResponse::outputs`] reports them: multi-bit ports expand to
/// `port[bit]`, single-bit ports stay bare. All interned — zipping a
/// response against these names costs no allocation per query.
pub fn output_bit_names(mapped: &MappedNetlist) -> Vec<Symbol> {
    mapped
        .outputs
        .iter()
        .flat_map(|(pname, bits)| {
            let wide = bits.len() > 1;
            (0..bits.len()).map(move |b| {
                if wide {
                    Symbol::intern(&format!("{pname}[{b}]"))
                } else {
                    *pname
                }
            })
        })
        .collect()
}

/// State-bit names (the scan-accessible pseudo-I/O), in exactly the
/// order [`OracleResponse::next_state`] reports them — the network's own
/// hierarchical register-bit names.
pub fn state_bit_names(mapped: &MappedNetlist) -> Vec<Symbol> {
    mapped.dff_names.clone()
}

/// One oracle query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleResponse {
    /// Flattened output bits (ports in order, LSB first).
    pub outputs: Vec<bool>,
    /// Next-state bits for every flip-flop.
    pub next_state: Vec<bool>,
}

/// Evaluates the network for primary inputs `pi` (flattened, in
/// [`MappedNetlist::input_names`] order) and scan state `state`.
///
/// The truth tables may be overridden with `keys` (used to check a
/// recovered bitstream); pass `None` to use the network's own tables.
///
/// # Panics
///
/// Panics if `pi` or `state` have the wrong length.
pub fn query(
    mapped: &MappedNetlist,
    pi: &[bool],
    state: &[bool],
    keys: Option<&[Vec<bool>]>,
) -> OracleResponse {
    assert_eq!(pi.len(), mapped.input_names.len(), "pi width");
    assert_eq!(state.len(), mapped.dffs.len(), "state width");
    let mut lut_vals = vec![false; mapped.luts.len()];
    let src_val = |s: &MappedSrc, lut_vals: &[bool]| -> bool {
        match s {
            MappedSrc::Const(v) => *v,
            MappedSrc::Pi(i) => pi[*i],
            MappedSrc::Lut(i) => lut_vals[*i],
            MappedSrc::Dff(i) => state[*i],
        }
    };
    for i in 0..mapped.luts.len() {
        let lut = &mapped.luts[i];
        let mut pattern = 0usize;
        for (b, inp) in lut.inputs.iter().enumerate() {
            if src_val(inp, &lut_vals) {
                pattern |= 1 << b;
            }
        }
        lut_vals[i] = match keys {
            Some(keys) => keys[i][pattern],
            None => lut.eval(pattern),
        };
    }
    let outputs = mapped
        .outputs
        .iter()
        .flat_map(|(_, bits)| bits.iter().map(|s| src_val(s, &lut_vals)))
        .collect();
    let next_state = mapped
        .dffs
        .iter()
        .map(|d| src_val(&d.d, &lut_vals))
        .collect();
    OracleResponse {
        outputs,
        next_state,
    }
}

/// Checks functional equivalence of `keys` against the network's own
/// configuration by exhaustive enumeration (inputs + state must be ≤ 20
/// bits) — used to validate recovered bitstreams in tests.
pub fn exhaustive_equiv(mapped: &MappedNetlist, keys: &[Vec<bool>]) -> bool {
    let n_pi = mapped.input_names.len();
    let n_st = mapped.dffs.len();
    assert!(n_pi + n_st <= 20, "exhaustive check limited to 20 bits");
    for word in 0u64..(1 << (n_pi + n_st)) {
        let pi: Vec<bool> = (0..n_pi).map(|i| (word >> i) & 1 == 1).collect();
        let st: Vec<bool> = (0..n_st).map(|i| (word >> (n_pi + i)) & 1 == 1).collect();
        let want = query(mapped, &pi, &st, None);
        let got = query(mapped, &pi, &st, Some(keys));
        if want != got {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_netlist::elaborate::elaborate;
    use alice_netlist::lutmap::map_luts;
    use alice_verilog::parse_source;

    fn mapped(src: &str, top: &str) -> MappedNetlist {
        let f = parse_source(src).expect("parse");
        let n = elaborate(&f, top).expect("elab");
        map_luts(&n, 4).expect("map")
    }

    #[test]
    fn oracle_matches_rtl_semantics() {
        let m = mapped(
            "module m(input wire [2:0] a, output wire y); assign y = &a; endmodule",
            "m",
        );
        for v in 0..8u32 {
            let pi: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            let r = query(&m, &pi, &[], None);
            assert_eq!(r.outputs[0], v == 7, "v={v}");
        }
    }

    #[test]
    fn wrong_key_changes_behaviour() {
        let m = mapped(
            "module m(input wire [2:0] a, output wire y); assign y = ^a; endmodule",
            "m",
        );
        // All-zero key: constant-0 LUTs.
        let zero_keys: Vec<Vec<bool>> = m.luts.iter().map(|_| vec![false; 16]).collect();
        assert!(!exhaustive_equiv(&m, &zero_keys));
        // The true key (extracted from the network) is equivalent.
        let true_keys: Vec<Vec<bool>> = m
            .luts
            .iter()
            .map(|l| (0..16).map(|p| l.eval(p)).collect())
            .collect();
        assert!(exhaustive_equiv(&m, &true_keys));
    }

    #[test]
    fn bit_names_track_response_order() {
        let m = mapped(
            "module m(input wire [1:0] a, output wire [1:0] y, output wire z);\
             assign y = ~a; assign z = ^a; endmodule",
            "m",
        );
        let names = output_bit_names(&m);
        let r = query(&m, &[false, true], &[], None);
        assert_eq!(names.len(), r.outputs.len());
        let texts: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        assert_eq!(texts, vec!["y[0]", "y[1]", "z"]);
        assert!(state_bit_names(&m).is_empty());
    }

    #[test]
    fn sequential_state_is_pseudo_io() {
        let m = mapped(
            "module c(input wire clk, output reg q);\
             always @(posedge clk) q <= ~q; endmodule",
            "c",
        );
        assert_eq!(m.dff_count(), 1);
        // `clk` stays a primary input of the mapped network (unused).
        let r0 = query(&m, &[false], &[false], None);
        assert_eq!(r0.next_state, vec![true]);
        let r1 = query(&m, &[false], &[true], None);
        assert_eq!(r1.next_state, vec![false]);
    }
}
