//! Security evaluation substrate: a from-scratch CDCL SAT solver and the
//! oracle-guided SAT attack of Subramanyan et al. (\[16\] in the paper),
//! specialized to eFPGA-redacted LUT networks.
//!
//! The paper's threat model (§2.1) assumes an attacker with the chip
//! design, the isolated fabric, and a fully-scanned unlocked oracle. Here:
//!
//! * [`solver`] — the CDCL solver (watched literals, 1UIP learning,
//!   VSIDS, Luby restarts), tunable via [`SolverConfig`],
//! * [`engine`] — the pluggable [`SatEngine`] boundary every SAT
//!   consumer in the flow (CEC, verify, attack) is written against,
//! * [`portfolio`] — a [`PortfolioEngine`] racing N diversified solver
//!   configs with cooperative cancellation; first definitive answer wins,
//! * [`oracle`] — software oracle over a mapped LUT network with scan
//!   access (DFFs as pseudo-I/O),
//! * [`attack`] — the DIP-driven attack loop recovering the bitstream,
//!   with budgets that turn "too expensive" into a resilience signal.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "module m(input wire [2:0] a, output wire y); assign y = &a; endmodule";
//! let f = alice_verilog::parse_source(src)?;
//! let n = alice_netlist::elaborate::elaborate(&f, "m")?;
//! let mapped = alice_netlist::lutmap::map_luts(&n, 4)?;
//! let report = alice_attacks::sat_attack(&mapped, Default::default());
//! println!("broke after {} DIPs over {} key bits", report.dips, report.key_bits);
//! # Ok(())
//! # }
//! ```

pub mod attack;
pub mod engine;
pub mod oracle;
pub mod portfolio;
pub mod solver;

pub use attack::{
    key_bit_names, sat_attack, sat_attack_portfolio, AttackBudget, AttackReport, AttackStatus, Dip,
};
pub use engine::{CancelToken, EngineStats, SatEngine};
pub use oracle::{exhaustive_equiv, output_bit_names, query, state_bit_names, OracleResponse};
pub use portfolio::{diversified_configs, PortfolioEngine, PortfolioStats};
pub use solver::{SatResult, Solver, SolverConfig, Var};
