//! A CDCL SAT solver built from scratch for the attack harness.
//!
//! Implements the standard architecture: two-watched-literal propagation,
//! first-UIP conflict analysis with clause learning, VSIDS variable
//! activities on an indexed order heap, phase saving, Luby restarts, and
//! incremental solving under assumptions ([`Solver::solve_with`]).
//!
//! The learned-clause database is actively managed for long-lived
//! incremental use (hundreds of assumption solves against one formula,
//! as in the keyed-miter CEC path): every learned clause is tagged with
//! its literal-block distance (LBD, "glue") at learn time and carries a
//! MiniSat-style clause activity bumped whenever conflict analysis
//! traverses it; when the live learned count outgrows a growing limit,
//! a reduction pass at a restart point drops the coldest half of the
//! *deletable* clauses — originals, glue ≤ 2 clauses, and clauses
//! locked as the reason of a current implication are never dropped —
//! and compacts the database (watches and reason pointers are remapped
//! in place). Saved phases, variable activities, and the surviving
//! learned clauses all persist across [`Solver::solve_with`] calls, so
//! later queries on the same formula start warm.

use alice_intern::Symbol;
use alice_par::CancelToken;
use std::collections::HashMap;
use std::fmt;

static SAT_CONFLICTS: alice_obs::Counter = alice_obs::Counter::new(
    "alice_sat_conflicts_total",
    "CDCL conflicts across all solver instances (including discarded racers)",
);
static SAT_LEARNED: alice_obs::Counter = alice_obs::Counter::new(
    "alice_sat_learned_total",
    "Learned clauses across all solver instances (including discarded racers)",
);
static SAT_PROPAGATIONS: alice_obs::Counter = alice_obs::Counter::new(
    "alice_sat_propagations_total",
    "Unit-propagation literal dequeues across all solver instances",
);
static SAT_RESTARTS: alice_obs::Counter = alice_obs::Counter::new(
    "alice_solver_restarts",
    "Luby restarts across all solver instances",
);
static SAT_ASSUMPTION_SOLVES: alice_obs::Counter = alice_obs::Counter::new(
    "alice_solver_assumption_solves",
    "Incremental solve_with calls carrying a non-empty assumption set",
);
static SAT_LEARNED_KEPT: alice_obs::Counter = alice_obs::Counter::new(
    "alice_solver_learned_kept",
    "Learned clauses surviving clause-database reductions (cumulative over reductions)",
);
static SAT_LEARNED_DROPPED: alice_obs::Counter = alice_obs::Counter::new(
    "alice_solver_learned_dropped",
    "Learned clauses dropped by clause-database reductions",
);

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable with a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Builds a literal with an explicit sign (`true` = negated).
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit(v.0 << 1 | negated as u32)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complement literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            if self.is_neg() { "-" } else { "" },
            self.var().0
        )
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; read the model with [`Solver::value`].
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// Conflict/decision budget exhausted.
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Assign {
    Unassigned,
    True,
    False,
}

/// Search-heuristic knobs for portfolio diversification.
///
/// The default value reproduces the solver's historical behavior bit for
/// bit — `Solver::new()` and `Solver::with_config(SolverConfig::default())`
/// take identical search trajectories. Every field only steers
/// *heuristics* (decision order, restart cadence, initial polarity);
/// verdicts and models stay sound for any setting, which is what makes
/// racing differently-configured solvers on one formula correct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// VSIDS activity decay per conflict (MiniSat's `var-decay`).
    pub var_decay: f64,
    /// Base interval of the Luby restart sequence, in conflicts.
    pub restart_base: u64,
    /// Initial saved phase for fresh variables (`false` = historical
    /// negative-polarity-first behavior).
    pub invert_phase: bool,
    /// Seed for a tiny deterministic perturbation of initial variable
    /// activities, breaking decision-order ties differently per config.
    /// `0` disables the perturbation entirely.
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            restart_base: 64,
            invert_phase: false,
            seed: 0,
        }
    }
}

/// splitmix64: the workspace's stand-in PRNG (also used by the sweep's
/// signature simulation) — here it seeds activity perturbations.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Indexed max-heap over variable activities (MiniSat's `order_heap`),
/// so picking the next decision variable is O(log n) instead of a linear
/// scan — the difference between seconds and hours on CEC miters with
/// tens of thousands of variables.
#[derive(Debug, Default)]
struct OrderHeap {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `NONE`.
    pos: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl OrderHeap {
    fn grow(&mut self) {
        self.pos.push(NONE);
    }

    fn in_heap(&self, v: u32) -> bool {
        self.pos[v as usize] != NONE
    }

    fn percolate_up(&mut self, activity: &[f64], mut i: usize) {
        let v = self.heap[i];
        while i > 0 {
            let p = (i - 1) >> 1;
            if activity[self.heap[p] as usize] >= activity[v as usize] {
                break;
            }
            self.heap[i] = self.heap[p];
            self.pos[self.heap[i] as usize] = i as u32;
            i = p;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as u32;
    }

    fn percolate_down(&mut self, activity: &[f64], mut i: usize) {
        let v = self.heap[i];
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let c = if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[l] as usize]
            {
                r
            } else {
                l
            };
            if activity[self.heap[c] as usize] <= activity[v as usize] {
                break;
            }
            self.heap[i] = self.heap[c];
            self.pos[self.heap[i] as usize] = i as u32;
            i = c;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as u32;
    }

    fn insert(&mut self, activity: &[f64], v: u32) {
        if self.in_heap(v) {
            return;
        }
        self.heap.push(v);
        self.percolate_up(activity, self.heap.len() - 1);
    }

    fn bumped(&mut self, activity: &[f64], v: u32) {
        let p = self.pos[v as usize];
        if p != NONE {
            self.percolate_up(activity, p as usize);
        }
    }

    fn pop(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = NONE;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.percolate_down(activity, 0);
        }
        Some(top)
    }
}

/// Per-clause bookkeeping for database reduction, parallel to
/// `Solver::clauses`.
#[derive(Debug, Clone, Copy)]
struct ClauseInfo {
    /// Learned (deletable) vs original (permanent).
    learned: bool,
    /// Literal-block distance at learn time: the number of distinct
    /// decision levels among the clause's literals. Low-LBD ("glue")
    /// clauses connect few levels and are empirically the ones worth
    /// keeping forever; `lbd <= 2` exempts a clause from reduction.
    lbd: u32,
    /// Clause activity: bumped when conflict analysis traverses the
    /// clause, decayed once per conflict. Reduction drops the coldest
    /// deletable half.
    act: f64,
}

/// Reductions start once this many learned clauses are live (the limit
/// then grows ~10% per reduction, MiniSat-style).
const REDUCE_BASE: u64 = 2_000;

/// Clause-activity decay per conflict (MiniSat's `clause-decay`).
const CLAUSE_DECAY: f64 = 0.999;

/// The CDCL solver.
///
/// # Example
///
/// ```
/// use alice_attacks::solver::{Lit, SatResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// assert_eq!(s.solve(), SatResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Vec<Lit>>,
    /// Reduction metadata, index-parallel to `clauses`.
    clause_info: Vec<ClauseInfo>,
    /// Clause-activity bump amount (grows as `cla_inc / CLAUSE_DECAY`
    /// per conflict, rescaled with the activities on overflow).
    cla_inc: f64,
    /// Original (non-learned) clauses of length >= 2 ever added.
    originals: u64,
    /// Learned clauses of length >= 2 currently in the database.
    learned_live: u64,
    /// Live learned count that triggers the next reduction; `0` = not
    /// yet derived from the instance size.
    reduce_limit: u64,
    watches: Vec<Vec<usize>>, // per literal: clause indices
    assigns: Vec<Assign>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    act_inc: f64,
    order: OrderHeap,
    unsat: bool,
    /// Conflict budget for [`Solver::solve`]; `None` = unlimited.
    pub conflict_budget: Option<u64>,
    conflicts: u64,
    /// Total conflicts over the solver's lifetime (statistics).
    pub total_conflicts: u64,
    /// Total learned clauses (including learned units) over the solver's
    /// lifetime (statistics).
    pub total_learned: u64,
    /// Total literals dequeued by unit propagation over the solver's
    /// lifetime (statistics).
    pub total_propagations: u64,
    /// Total Luby restarts over the solver's lifetime (statistics).
    pub total_restarts: u64,
    /// Total [`Solver::solve_with`] calls carrying a non-empty
    /// assumption set (statistics).
    pub total_assumption_solves: u64,
    /// Learned clauses surviving clause-database reductions, summed
    /// over every reduction pass (statistics).
    pub total_learned_kept: u64,
    /// Learned clauses dropped by clause-database reductions
    /// (statistics).
    pub total_learned_dropped: u64,
    /// Heuristic configuration (see [`SolverConfig`]).
    config: SolverConfig,
    /// Cooperative cancellation for portfolio racing: polled once per
    /// search-loop iteration, so a losing solver stops within one
    /// propagation round — well under one restart.
    cancel: Option<CancelToken>,
    /// Diagnostic labels: problem-level names (interned port, register,
    /// or key-bit names) attached to CNF variables. Sparse — only the
    /// variables an encoder chooses to label carry one.
    names: HashMap<u32, Symbol>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            act_inc: 1.0,
            cla_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Creates an empty solver with diversified heuristics; the default
    /// config reproduces [`Solver::new`] exactly.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            act_inc: 1.0,
            cla_inc: 1.0,
            config,
            ..Solver::default()
        }
    }

    /// Installs (or clears) the shared cancellation token. A cancelled
    /// solve returns [`SatResult::Unknown`] with the solver state intact.
    pub fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(Assign::Unassigned);
        self.phase.push(self.config.invert_phase);
        self.level.push(0);
        self.reason.push(None);
        // A seeded config perturbs initial activities by strictly less
        // than one bump, so it only permutes otherwise-tied decisions.
        self.activity.push(if self.config.seed == 0 {
            0.0
        } else {
            let mut x = self.config.seed ^ (u64::from(v.0) << 17);
            splitmix64(&mut x) as f64 / u64::MAX as f64 * 1e-3
        });
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow();
        self.order.insert(&self.activity, v.0);
        v
    }

    /// Allocates a fresh variable carrying a diagnostic label (see
    /// [`Solver::label`]).
    pub fn new_named_var(&mut self, name: Symbol) -> Var {
        let v = self.new_var();
        self.label(v, name);
        v
    }

    /// Attaches (or replaces) a problem-level name on `v` — the interned
    /// port, register, or key-bit identity the variable encodes. Labels
    /// never affect solving; they make models and DIPs readable.
    pub fn label(&mut self, v: Var, name: Symbol) {
        self.names.insert(v.0, name);
    }

    /// The label of `v`, if one was attached.
    pub fn name_of(&self, v: Var) -> Option<Symbol> {
        self.names.get(&v.0).copied()
    }

    /// The model restricted to labeled variables, as `(name, value)`
    /// pairs in variable order — a readable satisfying assignment after
    /// [`Solver::solve`] returns [`SatResult::Sat`].
    pub fn named_model(&self) -> Vec<(Symbol, bool)> {
        let mut out: Vec<(u32, Symbol, bool)> = self
            .names
            .iter()
            .filter_map(|(&v, &name)| self.value(Var(v)).map(|b| (v, name, b)))
            .collect();
        out.sort_unstable_by_key(|&(v, _, _)| v);
        out.into_iter().map(|(_, name, b)| (name, b)).collect()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause. An empty clause makes the instance trivially UNSAT.
    ///
    /// Adding a clause resets the search to decision level 0, so any model
    /// from a previous [`Solver::solve`] call must be read *before* adding.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        self.cancel_until(0);
        // Deduplicate and check for tautology.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort();
        c.dedup();
        if c.windows(2).any(|w| w[0] == w[1].negate()) {
            return; // tautology
        }
        // Must be at decision level 0 here.
        debug_assert!(self.trail_lim.is_empty());
        if c.iter().any(|l| self.lit_value(*l) == Assign::True) {
            return; // satisfied at level 0
        }
        c.retain(|l| self.lit_value(*l) != Assign::False);
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if self.lit_value(c[0]) == Assign::False {
                    self.unsat = true;
                } else if self.lit_value(c[0]) == Assign::Unassigned {
                    self.enqueue(c[0], None);
                    if self.propagate().is_some() {
                        self.unsat = true;
                    }
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[c[0].index()].push(idx);
                self.watches[c[1].index()].push(idx);
                self.clauses.push(c);
                self.clause_info.push(ClauseInfo {
                    learned: false,
                    lbd: 0,
                    act: 0.0,
                });
                self.originals += 1;
            }
        }
    }

    /// Unwinds the search to decision level 0, keeping every assignment
    /// implied by the formula itself. Models from a previous `Sat`
    /// answer become unreadable; learned clauses, saved phases, and
    /// variable activities survive. Incremental drivers call this
    /// between assumption solves once they are done reading the model.
    pub fn reset_to_root(&mut self) {
        self.cancel_until(0);
    }

    fn lit_value(&self, l: Lit) -> Assign {
        match self.assigns[l.var().0 as usize] {
            Assign::Unassigned => Assign::Unassigned,
            Assign::True => {
                if l.is_neg() {
                    Assign::False
                } else {
                    Assign::True
                }
            }
            Assign::False => {
                if l.is_neg() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) {
        let v = l.var().0 as usize;
        self.assigns[v] = if l.is_neg() {
            Assign::False
        } else {
            Assign::True
        };
        self.phase[v] = !l.is_neg();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns a conflicting clause index if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.total_propagations += 1;
            let falsified = l.negate();
            let mut i = 0;
            // Take the watch list to sidestep aliasing; rebuilt as we scan.
            let mut watch_list = std::mem::take(&mut self.watches[falsified.index()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Ensure watched literal is at position 1.
                let pos = self.clauses[ci]
                    .iter()
                    .position(|&x| x == falsified)
                    .expect("watched literal in clause");
                self.clauses[ci].swap(pos, 1);
                if self.lit_value(self.clauses[ci][0]) == Assign::True {
                    i += 1;
                    continue; // clause satisfied
                }
                // Find a new watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    if self.lit_value(self.clauses[ci][k]) != Assign::False {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1];
                        self.watches[new_watch.index()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                let first = self.clauses[ci][0];
                match self.lit_value(first) {
                    Assign::False => {
                        // Conflict: restore remaining watches.
                        self.watches[falsified.index()] = watch_list;
                        return Some(ci);
                    }
                    Assign::Unassigned => {
                        self.enqueue(first, Some(ci));
                        i += 1;
                    }
                    Assign::True => {
                        i += 1;
                    }
                }
            }
            self.watches[falsified.index()] = watch_list;
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.act_inc;
        if self.activity[v.0 as usize] > 1e100 {
            // Uniform rescale preserves the heap order.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
        self.order.bumped(&self.activity, v.0);
    }

    /// Bumps a learned clause's activity (originals are permanent and
    /// carry none). Mirrors variable bumping, with the same uniform
    /// overflow rescale.
    fn bump_clause(&mut self, ci: usize) {
        if !self.clause_info[ci].learned {
            return;
        }
        self.clause_info[ci].act += self.cla_inc;
        if self.clause_info[ci].act > 1e20 {
            for info in &mut self.clause_info {
                info.act *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis; returns (learned clause, backjump level).
    fn analyze(&mut self, mut confl: usize) -> (Vec<Lit>, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut learned: Vec<Lit> = vec![Lit(0)]; // slot 0 for the UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0u32;
        let mut trail_idx = self.trail.len();
        let mut p: Option<Lit> = None;
        loop {
            // Clauses that conflict analysis traverses are the ones
            // pulling their weight; their activity decides reduction.
            self.bump_clause(confl);
            // Skip clause[0] of reason clauses: it is the implied literal p.
            let start = if p.is_none() { 0 } else { 1 };
            let lits: Vec<Lit> = self.clauses[confl][start..].to_vec();
            for q in lits {
                let v = q.var().0 as usize;
                if seen[v] || self.level[v] == 0 {
                    continue;
                }
                seen[v] = true;
                self.bump(q.var());
                if self.level[v] >= cur_level {
                    counter += 1;
                } else {
                    learned.push(q);
                }
            }
            // Find the next seen literal on the trail.
            loop {
                trail_idx -= 1;
                if seen[self.trail[trail_idx].var().0 as usize] {
                    break;
                }
            }
            let pl = self.trail[trail_idx];
            seen[pl.var().0 as usize] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(pl);
                break;
            }
            confl = self.reason[pl.var().0 as usize].expect("implied literal has a reason");
            p = Some(pl);
        }
        learned[0] = p.expect("found UIP").negate();
        // Backjump level = max level among the other literals; keep one
        // literal of that level at slot 1 so the watch pair stays valid
        // after the backjump.
        let mut bj = 0;
        let mut bj_idx = 0;
        for (i, l) in learned.iter().enumerate().skip(1) {
            let lv = self.level[l.var().0 as usize];
            if lv > bj {
                bj = lv;
                bj_idx = i;
            }
        }
        if bj_idx > 1 {
            learned.swap(1, bj_idx);
        }
        (learned, bj)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("non-empty");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty");
                let v = l.var().0 as usize;
                self.assigns[v] = Assign::Unassigned;
                self.reason[v] = None;
                self.order.insert(&self.activity, v as u32);
            }
        }
        self.qhead = self.trail.len();
    }

    /// Runs a clause-database reduction if the live learned count has
    /// outgrown the current limit. Called only at decision level 0 with
    /// propagation complete (restart points and solve entry), where the
    /// set of locked clauses is exactly the reasons of root implications.
    fn maybe_reduce(&mut self) {
        if self.reduce_limit == 0 {
            // First trigger scales with the instance: a third of the
            // original clause count, floored so tiny formulas never
            // churn their (useful) learned clauses.
            self.reduce_limit = REDUCE_BASE.max(self.originals / 3);
        }
        if self.learned_live > self.reduce_limit {
            self.reduce_db();
            // Grow ~10% per reduction so a genuinely hard instance is
            // allowed to retain more as the search deepens.
            self.reduce_limit += self.reduce_limit / 10;
        }
    }

    /// Drops the coldest half of the deletable learned clauses and
    /// compacts the database. Deletable = learned, glue (LBD) > 2, and
    /// not locked as the reason of a current implication; originals are
    /// permanent. Watch lists and reason pointers are rebuilt against
    /// the compacted indices — positions 0/1 of every clause are its
    /// watched literals by invariant, so re-pushing them reproduces a
    /// valid watch state.
    fn reduce_db(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "reduce only at level 0");
        let mut locked = vec![false; self.clauses.len()];
        for l in &self.trail {
            if let Some(ci) = self.reason[l.var().0 as usize] {
                locked[ci] = true;
            }
        }
        let mut cand: Vec<usize> = (0..self.clauses.len())
            .filter(|&ci| {
                let info = self.clause_info[ci];
                info.learned && info.lbd > 2 && !locked[ci]
            })
            .collect();
        // Coldest first; ties broken toward dropping higher glue, then
        // older clauses — fully deterministic.
        let info = &self.clause_info;
        cand.sort_unstable_by(|&a, &b| {
            info[a]
                .act
                .partial_cmp(&info[b].act)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(info[b].lbd.cmp(&info[a].lbd))
                .then(a.cmp(&b))
        });
        let ndrop = cand.len() / 2;
        if ndrop == 0 {
            return;
        }
        let mut drop_mask = vec![false; self.clauses.len()];
        for &ci in &cand[..ndrop] {
            drop_mask[ci] = true;
        }
        // Compact in place, recording the old -> new index map.
        let mut remap: Vec<usize> = vec![usize::MAX; self.clauses.len()];
        let mut w = 0usize;
        for r in 0..self.clauses.len() {
            if drop_mask[r] {
                continue;
            }
            if w != r {
                self.clauses.swap(w, r);
                self.clause_info.swap(w, r);
            }
            remap[r] = w;
            w += 1;
        }
        self.clauses.truncate(w);
        self.clause_info.truncate(w);
        for wl in &mut self.watches {
            wl.clear();
        }
        for ci in 0..self.clauses.len() {
            let (l0, l1) = (self.clauses[ci][0], self.clauses[ci][1]);
            self.watches[l0.index()].push(ci);
            self.watches[l1.index()].push(ci);
        }
        for r in self.reason.iter_mut().flatten() {
            *r = remap[*r];
            debug_assert_ne!(*r, usize::MAX, "locked clauses are kept");
        }
        self.learned_live -= ndrop as u64;
        self.total_learned_dropped += ndrop as u64;
        self.total_learned_kept += self.learned_live;
    }

    fn decide(&mut self) -> Option<Lit> {
        // Lazy deletion: assigned variables are dropped as they surface.
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v as usize] == Assign::Unassigned {
                return Some(Lit::new(Var(v), !self.phase[v as usize]));
            }
        }
        None
    }

    /// Solves the current formula.
    ///
    /// Returns [`SatResult::Unknown`] when the conflict budget (if set) is
    /// exhausted — the attack harness uses this as its "resilient within
    /// budget" signal.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves the current formula under `assumptions` (incremental
    /// MiniSat-style interface).
    ///
    /// Each assumption literal is forced as a decision before the free
    /// search starts. [`SatResult::Unsat`] then means *unsatisfiable
    /// under these assumptions* — the formula itself stays usable and
    /// later calls with different assumptions may be SAT. This is what
    /// lets equivalence checking discharge thousands of per-output and
    /// per-candidate-pair queries against one shared clause database,
    /// reusing everything learned between queries.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        if !assumptions.is_empty() {
            self.total_assumption_solves += 1;
            SAT_ASSUMPTION_SOLVES.inc();
        }
        let before = (
            self.total_conflicts,
            self.total_learned,
            self.total_propagations,
            self.total_restarts,
            self.total_learned_kept,
            self.total_learned_dropped,
        );
        let res = self.solve_with_inner(assumptions);
        // Process-wide effort mirror. Unlike `EngineStats` (winner-only
        // by contract), these count every solve that ran, including
        // discarded portfolio racers.
        SAT_CONFLICTS.add(self.total_conflicts - before.0);
        SAT_LEARNED.add(self.total_learned - before.1);
        SAT_PROPAGATIONS.add(self.total_propagations - before.2);
        SAT_RESTARTS.add(self.total_restarts - before.3);
        SAT_LEARNED_KEPT.add(self.total_learned_kept - before.4);
        SAT_LEARNED_DROPPED.add(self.total_learned_dropped - before.5);
        res
    }

    fn solve_with_inner(&mut self, assumptions: &[Lit]) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        // Incremental entry point: a burst of cheap assumption solves
        // can accumulate clauses without ever restarting, so the
        // database check runs here too, not only at restart points.
        self.maybe_reduce();
        self.conflicts = 0;
        let mut restart_idx = 0u64;
        let mut restart_limit = self.config.restart_base * luby(restart_idx);
        loop {
            // Cooperative cancellation (portfolio racing): one relaxed
            // atomic load per propagation round, losers stop well within
            // one restart. State is unwound so the solver stays usable.
            if let Some(cancel) = &self.cancel {
                if cancel.is_cancelled() {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
            }
            match self.propagate() {
                Some(confl) => {
                    self.conflicts += 1;
                    self.total_conflicts += 1;
                    if let Some(budget) = self.conflict_budget {
                        if self.conflicts > budget {
                            self.cancel_until(0);
                            return SatResult::Unknown;
                        }
                    }
                    if self.trail_lim.is_empty() {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                    let (learned, bj) = self.analyze(confl);
                    // LBD while every learned literal is still assigned:
                    // the number of distinct decision levels it spans.
                    let lbd = {
                        let mut levels: Vec<u32> = learned
                            .iter()
                            .map(|l| self.level[l.var().0 as usize])
                            .collect();
                        levels.sort_unstable();
                        levels.dedup();
                        levels.len() as u32
                    };
                    self.cancel_until(bj);
                    self.total_learned += 1;
                    if learned.len() == 1 {
                        self.enqueue(learned[0], None);
                    } else {
                        let idx = self.clauses.len();
                        self.watches[learned[0].index()].push(idx);
                        self.watches[learned[1].index()].push(idx);
                        let unit = learned[0];
                        self.clauses.push(learned);
                        self.clause_info.push(ClauseInfo {
                            learned: true,
                            lbd,
                            act: self.cla_inc,
                        });
                        self.learned_live += 1;
                        self.enqueue(unit, Some(idx));
                    }
                    self.act_inc /= self.config.var_decay;
                    self.cla_inc /= CLAUSE_DECAY;
                    if self.conflicts >= restart_limit {
                        restart_idx += 1;
                        restart_limit =
                            self.conflicts + self.config.restart_base * luby(restart_idx);
                        self.total_restarts += 1;
                        self.cancel_until(0);
                        self.maybe_reduce();
                    }
                }
                None => {
                    // Re-apply assumptions first: one decision level per
                    // literal (restarts and backjumps may have popped
                    // them). An already-false assumption is a conflict
                    // with what has been learned: UNSAT under
                    // assumptions, but not globally.
                    let mut enqueued = false;
                    while self.trail_lim.len() < assumptions.len() {
                        let p = assumptions[self.trail_lim.len()];
                        match self.lit_value(p) {
                            Assign::True => self.trail_lim.push(self.trail.len()),
                            Assign::False => {
                                self.cancel_until(0);
                                return SatResult::Unsat;
                            }
                            Assign::Unassigned => {
                                self.trail_lim.push(self.trail.len());
                                self.enqueue(p, None);
                                enqueued = true;
                                break;
                            }
                        }
                    }
                    if enqueued {
                        continue;
                    }
                    match self.decide() {
                        None => return SatResult::Sat,
                        Some(l) => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(l, None);
                        }
                    }
                }
            }
        }
    }

    /// Model value of `v` after a SAT answer (`None` if unassigned).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assigns[v.0 as usize] {
            Assign::Unassigned => None,
            Assign::True => Some(true),
            Assign::False => Some(false),
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...).
fn luby(i: u64) -> u64 {
    let mut k = 1u64;
    while (1u64 << (k + 1)) - 1 <= i + 1 {
        k += 1;
    }
    let mut i = i;
    let mut kk = k;
    loop {
        if i + 1 == (1u64 << kk) - 1 {
            return 1u64 << (kk - 1);
        }
        if i + 1 < (1u64 << kk) - 1 {
            kk -= 1;
            if kk == 0 {
                return 1;
            }
            continue;
        }
        i -= (1u64 << kk) - 1;
        kk = 1;
        while (1u64 << (kk + 1)) - 1 <= i + 1 {
            kk += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));

        let mut s2 = Solver::new();
        let b = s2.new_var();
        s2.add_clause(&[Lit::pos(b)]);
        s2.add_clause(&[Lit::neg(b)]);
        assert_eq!(s2.solve(), SatResult::Unsat);
    }

    #[test]
    fn chain_implication() {
        // (a -> b -> c -> d), a  => d
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        for w in vs.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        s.add_clause(&[Lit::pos(vs[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(vs[3]), Some(true));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j] = pigeon i in hole j; 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_constraint_forces_model() {
        // a xor b = 1, a = 1 => b = 0.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        s.add_clause(&[Lit::pos(a)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(b), Some(false));
    }

    #[test]
    fn incremental_solving_with_added_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve(), SatResult::Sat);
        s.cancel_until(0);
        s.add_clause(&[Lit::neg(a)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        s.cancel_until(0);
        s.add_clause(&[Lit::neg(b)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn budget_returns_unknown_or_solves() {
        // Hard-ish random-like instance with a tiny budget.
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..30).map(|_| s.new_var()).collect();
        // Parity chain: x0 ^ x1 ^ ... ^ x29 = 1 encoded pairwise.
        for i in 0..29 {
            let (a, b) = (vs[i], vs[i + 1]);
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
        s.conflict_budget = Some(1);
        let r = s.solve();
        assert!(r == SatResult::Sat || r == SatResult::Unknown);
    }

    #[test]
    fn assumptions_are_temporary() {
        // (a | b) & (!a | c): assuming !b forces a and c; assuming
        // (!a, !b) is UNSAT under assumptions but the formula survives.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.add_clause(&[Lit::neg(a), Lit::pos(c)]);
        assert_eq!(s.solve_with(&[Lit::neg(b)]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(c), Some(true));
        assert_eq!(s.solve_with(&[Lit::neg(a), Lit::neg(b)]), SatResult::Unsat);
        // Not globally unsat: a plain solve still succeeds.
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.solve_with(&[Lit::pos(b)]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn assumption_conflicting_with_learned_units_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
        // a and b are root-level implied; assuming !b must fail cleanly.
        assert_eq!(s.solve_with(&[Lit::neg(b)]), SatResult::Unsat);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn incremental_queries_share_learned_clauses() {
        // Pigeonhole core plus a relaxing selector: with the selector
        // assumed true the instance is UNSAT, without it SAT.
        let mut s = Solver::new();
        let sel = s.new_var();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::neg(sel), Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        for _ in 0..3 {
            assert_eq!(s.solve_with(&[Lit::pos(sel)]), SatResult::Unsat);
            assert_eq!(s.solve_with(&[Lit::neg(sel)]), SatResult::Sat);
        }
    }

    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let p: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            s.add_clause(&row.iter().map(|&v| Lit::pos(v)).collect::<Vec<_>>());
        }
        for i1 in 0..pigeons {
            for i2 in (i1 + 1)..pigeons {
                for (&x, &y) in p[i1].iter().zip(&p[i2]) {
                    s.add_clause(&[Lit::neg(x), Lit::neg(y)]);
                }
            }
        }
    }

    #[test]
    fn pre_cancelled_solve_returns_unknown_and_stays_usable() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5, 4);
        let token = CancelToken::new();
        token.cancel();
        s.set_cancel(Some(token));
        assert_eq!(s.solve(), SatResult::Unknown, "cancelled before searching");
        // Clearing the token restores normal solving on intact state.
        s.set_cancel(None);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn diversified_configs_agree_on_verdicts() {
        for config in [
            SolverConfig::default(),
            SolverConfig {
                var_decay: 0.85,
                restart_base: 32,
                invert_phase: true,
                seed: 0xA11C_E001,
            },
            SolverConfig {
                var_decay: 0.975,
                restart_base: 256,
                invert_phase: false,
                seed: 7,
            },
        ] {
            let mut s = Solver::with_config(config);
            pigeonhole(&mut s, 5, 4);
            assert_eq!(s.solve(), SatResult::Unsat, "{config:?}");
            let mut s = Solver::with_config(config);
            pigeonhole(&mut s, 4, 4);
            assert_eq!(s.solve(), SatResult::Sat, "{config:?}");
        }
    }

    #[test]
    fn clause_db_reduction_preserves_verdicts_and_state() {
        // Force a reduction at every restart point: the verdict must be
        // unaffected and the solver must stay usable afterwards.
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        s.reduce_limit = 1;
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(
            s.total_learned_dropped > 0,
            "a conflict-heavy instance with limit 1 must reduce"
        );
        assert!(s.total_restarts > 0);

        // SAT instances survive aggressive reduction too, and the model
        // is a real one.
        let mut s = Solver::new();
        let sel = s.new_var();
        let mut rows: Vec<Vec<Var>> = Vec::new();
        for _ in 0..5 {
            rows.push((0..4).map(|_| s.new_var()).collect());
        }
        for row in &rows {
            let mut c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            c.push(Lit::neg(sel));
            s.add_clause(&c);
        }
        for i1 in 0..5 {
            for i2 in (i1 + 1)..5 {
                for (&x, &y) in rows[i1].iter().zip(&rows[i2]) {
                    s.add_clause(&[Lit::neg(x), Lit::neg(y)]);
                }
            }
        }
        s.reduce_limit = 1;
        // Alternate UNSAT/SAT assumption solves across reductions: the
        // clause database churns, the answers must not.
        for _ in 0..4 {
            assert_eq!(s.solve_with(&[Lit::pos(sel)]), SatResult::Unsat);
            assert_eq!(s.solve_with(&[Lit::neg(sel)]), SatResult::Sat);
            assert_eq!(s.value(sel), Some(false));
        }
        assert_eq!(s.total_assumption_solves, 8);
    }

    #[test]
    fn reduction_never_drops_glue_or_locked_clauses() {
        // An implication chain learns only small (glue <= 2) clauses;
        // none may be dropped no matter how low the limit.
        let mut s = Solver::new();
        pigeonhole(&mut s, 4, 3);
        s.reduce_limit = 1;
        assert_eq!(s.solve(), SatResult::Unsat);
        // Root-level implications keep their reason clauses alive: after
        // any number of reductions every reason index must stay valid,
        // which `solve` exercises by propagating from the root again.
        let mut s = Solver::new();
        pigeonhole(&mut s, 5, 4);
        s.reduce_limit = 1;
        assert_eq!(s.solve(), SatResult::Unsat);
        assert_eq!(s.solve(), SatResult::Unsat, "state intact after reduce");
    }

    #[test]
    fn reset_to_root_keeps_formula_and_phases() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve_with(&[Lit::neg(a)]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        s.reset_to_root();
        // The model is gone but the formula still solves.
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..9).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1]);
    }

    #[test]
    fn labels_name_the_model() {
        let mut s = Solver::new();
        let a = s.new_named_var(Symbol::intern("key[0]"));
        let b = s.new_var(); // unlabeled: stays out of the named model
        let c = s.new_named_var(Symbol::intern("key[1]"));
        s.add_clause(&[Lit::pos(a)]);
        s.add_clause(&[Lit::pos(b)]);
        s.add_clause(&[Lit::neg(c)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.name_of(a), Some(Symbol::intern("key[0]")));
        assert_eq!(s.name_of(b), None);
        assert_eq!(
            s.named_model(),
            vec![
                (Symbol::intern("key[0]"), true),
                (Symbol::intern("key[1]"), false),
            ]
        );
    }
}
