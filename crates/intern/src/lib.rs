//! Interned symbols and instance-path trees for the ALICE workspace.
//!
//! The flow passes hierarchical names (instance paths, port bits, register
//! bits, module names) through every layer — parser, elaborator, dataflow,
//! clustering, selection, redaction, equivalence checking. Carrying them as
//! `String` means every map lookup re-hashes the bytes and every hand-off
//! clones. A [`Symbol`] is a copyable handle to the one leaked allocation
//! a process-wide interner keeps per distinct string: equality and
//! hashing are pointer operations, cloning is a copy, and the text is a
//! field read away ([`Symbol::as_str`]) — no lock on any of those paths.
//!
//! Determinism matters more than raw speed here (the flow's outputs are
//! golden-tested byte-for-byte), so [`Symbol`]'s `Ord` compares the
//! *strings*, not pointer values: a `BTreeMap<Symbol, _>` iterates in
//! exactly the order the old `BTreeMap<String, _>` did, regardless of
//! interning order or thread interleaving.
//!
//! The crate also provides [`PathTree`] — a real parent-pointer tree over
//! instance paths, replacing the string-prefix arithmetic that used to
//! answer ancestor queries — and [`StableHasher`], the 128-bit
//! content hasher behind the characterization cache's keys.
//!
//! # Hierarchical paths: [`HierPath`]
//!
//! A dotted instance path (`top.u_crp.u_s1`) is more than a name: it has
//! a parent, a leaf segment, ancestors. [`HierPath`] is the typed wrapper
//! every layer that *walks* the hierarchy passes around — a `Copy`
//! `Symbol` in memory, with [`HierPath::parent`], [`HierPath::join`],
//! [`HierPath::leaf`], and [`HierPath::is_ancestor_of`] implemented by
//! whole-segment splitting (so the textual-prefix siblings `top.a` and
//! `top.ab` are never confused). The segment-split methods are the
//! *specification*; a [`PathTree`] built from the design's real hierarchy
//! edges agrees with them whenever instance names are dot-free (always
//! true for Verilog identifiers) and stays authoritative when they are
//! not. [`PathTree::common_parent`] computes the lowest common ancestor
//! of a member set's parents — the eFPGA insertion-point query of the
//! redaction phase — directly on the tree's edges.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a cheap, copyable handle to a unique name.
///
/// Two symbols are equal iff their strings are equal; `Ord` follows the
/// string order (see the crate docs for why).
///
/// The handle *is* the leaked `&'static str`, so `as_str`, `==`
/// (pointer compare — the interner guarantees one allocation per
/// distinct string), `Hash` (pointer identity), and `Ord` never touch
/// the interner lock; only [`Symbol::intern`] does. Hot-path ordered
/// containers (`BTreeMap<Symbol, _>`) therefore compare without any
/// global synchronization.
///
/// # Example
///
/// ```
/// use alice_intern::Symbol;
/// let a = Symbol::intern("top.u_core");
/// let b = Symbol::intern("top.u_core");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "top.u_core");
/// ```
#[derive(Clone, Copy, Eq)]
pub struct Symbol(&'static str);

fn interner() -> &'static RwLock<HashMap<&'static str, &'static str>> {
    static GLOBAL: OnceLock<RwLock<HashMap<&'static str, &'static str>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(HashMap::new()))
}

impl Symbol {
    /// Interns `s`, returning its unique symbol.
    ///
    /// # Panics
    ///
    /// Panics if the interner lock is poisoned (a prior panic while
    /// interning) — unrecoverable state corruption, not an expected error.
    pub fn intern(s: &str) -> Symbol {
        {
            let rd = interner().read().expect("interner poisoned");
            if let Some(&stored) = rd.get(s) {
                return Symbol(stored);
            }
        }
        let mut wr = interner().write().expect("interner poisoned");
        if let Some(&stored) = wr.get(s) {
            return Symbol(stored);
        }
        // Interned strings live for the process lifetime; leaking ONE
        // allocation per distinct string is what makes pointer identity
        // a sound equality/hash for symbols.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        wr.insert(leaked, leaked);
        Symbol(leaked)
    }

    /// The interned text (lock-free).
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// Number of symbols interned so far in this process.
    pub fn count() -> usize {
        interner().read().expect("interner poisoned").len()
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // One leaked allocation per distinct string ⇒ pointer identity
        // is string equality.
        std::ptr::eq(self.0, other.0)
    }
}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if std::ptr::eq(self.0, other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.cmp(other.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// A typed hierarchical instance path: an interned dotted name
/// (`top.u_crp.u_s1`) with path *semantics* — parent, leaf, join,
/// ancestor tests — attached.
///
/// `HierPath` is a transparent [`Symbol`] wrapper, so it is `Copy`,
/// pointer-compared, and free to clone; the structural helpers split on
/// whole `.` segments, which makes them immune to the textual-prefix
/// trap (`top.a` is **not** an ancestor of `top.ab`, even though it is a
/// string prefix). These segment-split semantics are the specification
/// the design's [`PathTree`] (built from real hierarchy edges) agrees
/// with; use the tree when one is at hand — it also covers exotic names
/// containing dots — and `HierPath` everywhere paths are carried,
/// compared, or extended.
///
/// # Example
///
/// ```
/// use alice_intern::HierPath;
/// let crp = HierPath::intern("des3.u_crp");
/// let sbox = crp.join("u_s1");
/// assert_eq!(sbox.as_str(), "des3.u_crp.u_s1");
/// assert_eq!(sbox.parent(), Some(crp));
/// assert_eq!(sbox.leaf(), "u_s1");
/// assert!(crp.is_ancestor_of(sbox));
/// // Whole segments, not string prefixes:
/// assert!(!HierPath::intern("top.a").is_ancestor_of(HierPath::intern("top.ab")));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HierPath(Symbol);

impl HierPath {
    /// Interns a dotted path string.
    pub fn intern(s: &str) -> HierPath {
        HierPath(Symbol::intern(s))
    }

    /// Wraps an already-interned symbol as a path.
    pub fn from_symbol(s: Symbol) -> HierPath {
        HierPath(s)
    }

    /// The underlying symbol (for symbol-keyed maps and [`PathTree`]
    /// queries).
    pub fn symbol(self) -> Symbol {
        self.0
    }

    /// The path text (lock-free).
    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }

    /// Extends the path by one child segment: `top.u` + `core` →
    /// `top.u.core`.
    #[must_use]
    pub fn join(self, child: &str) -> HierPath {
        HierPath::intern(&format!("{}.{child}", self.as_str()))
    }

    /// The parent path (`None` for single-segment roots).
    pub fn parent(self) -> Option<HierPath> {
        self.as_str()
            .rsplit_once('.')
            .map(|(p, _)| HierPath::intern(p))
    }

    /// The last segment (the instance's own name).
    pub fn leaf(self) -> &'static str {
        match self.as_str().rsplit_once('.') {
            Some((_, leaf)) => leaf,
            None => self.as_str(),
        }
    }

    /// The `.`-separated segments, root first.
    pub fn segments(self) -> std::str::Split<'static, char> {
        self.as_str().split('.')
    }

    /// Number of segments (a root path has depth 1).
    pub fn depth(self) -> usize {
        self.segments().count()
    }

    /// True if `self` is a *strict* ancestor of `other` under the
    /// segment-split spec: every segment of `self` matches the leading
    /// segments of `other`, and `other` is deeper.
    pub fn is_ancestor_of(self, other: HierPath) -> bool {
        self != other && self.is_ancestor_or_self(other)
    }

    /// True if `self` equals `other` or is a strict ancestor of it.
    pub fn is_ancestor_or_self(self, other: HierPath) -> bool {
        if self == other {
            return true;
        }
        let (a, b) = (self.as_str(), other.as_str());
        b.len() > a.len() && b.as_bytes()[a.len()] == b'.' && b.starts_with(a)
    }
}

impl fmt::Display for HierPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for HierPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for HierPath {
    fn from(s: &str) -> HierPath {
        HierPath::intern(s)
    }
}

impl From<Symbol> for HierPath {
    fn from(s: Symbol) -> HierPath {
        HierPath(s)
    }
}

impl From<HierPath> for Symbol {
    fn from(p: HierPath) -> Symbol {
        p.symbol()
    }
}

impl AsRef<str> for HierPath {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for HierPath {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for HierPath {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// A parent-pointer tree over hierarchical instance paths.
///
/// Ancestor queries (`is top.u an ancestor of top.u.v?`) used to be
/// answered with string-prefix arithmetic; this is the structural
/// replacement: every node knows its parent, and an ancestor check walks
/// the parent chain. Sibling paths that happen to share a textual prefix
/// (`top.a` vs `top.ab`) can never be confused, because they are distinct
/// children of the same parent node.
#[derive(Debug, Clone, Default)]
pub struct PathTree {
    parent: HashMap<Symbol, Option<Symbol>>,
}

impl PathTree {
    /// An empty tree.
    pub fn new() -> PathTree {
        PathTree::default()
    }

    /// Records `child` as a child of `parent`. Both become known nodes;
    /// `parent` keeps (or later gains) its own parent edge.
    pub fn insert_child(&mut self, parent: Symbol, child: Symbol) {
        self.parent.entry(parent).or_insert(None);
        self.parent.insert(child, Some(parent));
    }

    /// Records `root` as a tree root (no parent).
    pub fn insert_root(&mut self, root: Symbol) {
        self.parent.entry(root).or_insert(None);
    }

    /// Builds a tree from dotted paths, deriving edges from the `.`
    /// segments (convenience for tests and ad-hoc path sets; prefer
    /// [`PathTree::insert_child`] with real hierarchy edges).
    pub fn from_paths<I: IntoIterator<Item = Symbol>>(paths: I) -> PathTree {
        let mut t = PathTree::new();
        for p in paths {
            t.insert_path(p);
        }
        t
    }

    /// Inserts a dotted path, creating any missing ancestor nodes.
    pub fn insert_path(&mut self, path: Symbol) {
        if self.parent.contains_key(&path) {
            return;
        }
        match path.as_str().rsplit_once('.') {
            Some((parent, _)) => {
                let parent = Symbol::intern(parent);
                self.insert_path(parent);
                self.parent.insert(path, Some(parent));
            }
            None => {
                self.parent.insert(path, None);
            }
        }
    }

    /// Whether `path` is a known node.
    pub fn contains(&self, path: Symbol) -> bool {
        self.parent.contains_key(&path)
    }

    /// The parent of `path` (`None` for roots and unknown nodes).
    pub fn parent(&self, path: Symbol) -> Option<Symbol> {
        self.parent.get(&path).copied().flatten()
    }

    /// True if `a` equals `b` or lies on `b`'s parent chain.
    ///
    /// Unknown nodes have no ancestors besides themselves.
    pub fn is_ancestor_or_self(&self, a: Symbol, b: Symbol) -> bool {
        let mut cur = Some(b);
        while let Some(n) = cur {
            if n == a {
                return true;
            }
            cur = self.parent(n);
        }
        false
    }

    /// The parent of a typed path, following the tree's real edges (not
    /// segment splitting — the two agree for dot-free instance names).
    pub fn parent_path(&self, path: HierPath) -> Option<HierPath> {
        self.parent(path.symbol()).map(HierPath::from_symbol)
    }

    /// [`PathTree::is_ancestor_or_self`] over typed paths.
    pub fn path_is_ancestor_or_self(&self, a: HierPath, b: HierPath) -> bool {
        self.is_ancestor_or_self(a.symbol(), b.symbol())
    }

    /// Lowest common ancestor of the members' *parents*, walked on the
    /// tree's edges — the eFPGA insertion-point query: a single-parent
    /// member set inserts in place, members from different subtrees climb
    /// to the common dominator. Returns `None` for an empty member set;
    /// members unknown to the tree act as their own parents (they have
    /// no recorded edges to climb).
    pub fn common_parent(&self, members: &[HierPath]) -> Option<HierPath> {
        let parent_of = |m: HierPath| self.parent_path(m).unwrap_or(m);
        let mut lca = parent_of(*members.first()?);
        for &m in &members[1..] {
            let p = parent_of(m);
            while !self.path_is_ancestor_or_self(lca, p) {
                match self.parent_path(lca) {
                    Some(up) => lca = up,
                    None => break,
                }
            }
        }
        Some(lca)
    }

    /// Number of known nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// A deterministic 128-bit content hasher (two independent FNV-1a lanes),
/// the key-maker of the characterization cache. Not cryptographic; the
/// cache tolerates the (astronomically unlikely) collision by construction
/// only in the sense that both colliding inputs would be legal — keys mix
/// in enough structure that 2⁻¹²⁸ is an acceptable risk for a build tool.
#[derive(Debug, Clone, Copy)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher with fixed offsets.
    pub fn new() -> StableHasher {
        StableHasher {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ x as u64).wrapping_mul(0x0000_0100_0000_01b3);
            self.b = (self.b ^ x as u64).wrapping_mul(0x0000_01b3_0000_0193);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed string (prefixing prevents ambiguity
    /// between `["ab","c"]` and `["a","bc"]`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The 128-bit digest as two words.
    pub fn finish(self) -> (u64, u64) {
        // A final avalanche so trailing zero-bytes still diffuse.
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (mix(self.a), mix(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("alpha");
        let b = Symbol::intern("alpha");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()), "one allocation");
        assert_eq!(a.as_str(), "alpha");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("x1"), Symbol::intern("x2"));
    }

    #[test]
    fn ord_follows_string_order_not_intern_order() {
        // Intern in reverse lexicographic order on purpose.
        let z = Symbol::intern("zzz-ord-test");
        let a = Symbol::intern("aaa-ord-test");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn path_tree_walks_real_edges() {
        let t = PathTree::from_paths(["top.u.v", "top.w"].map(Symbol::intern));
        let top = Symbol::intern("top");
        let u = Symbol::intern("top.u");
        let v = Symbol::intern("top.u.v");
        let w = Symbol::intern("top.w");
        assert!(t.is_ancestor_or_self(top, v));
        assert!(t.is_ancestor_or_self(u, v));
        assert!(t.is_ancestor_or_self(v, v));
        assert!(!t.is_ancestor_or_self(v, u));
        assert!(!t.is_ancestor_or_self(u, w));
        assert_eq!(t.parent(u), Some(top));
        assert_eq!(t.parent(top), None);
    }

    #[test]
    fn path_tree_never_confuses_textual_prefixes() {
        // `top.a` is a textual prefix of `top.ab` but not an ancestor.
        let t = PathTree::from_paths(["top.a", "top.ab", "top.a.b"].map(Symbol::intern));
        let a = Symbol::intern("top.a");
        let ab = Symbol::intern("top.ab");
        let a_b = Symbol::intern("top.a.b");
        assert!(!t.is_ancestor_or_self(a, ab));
        assert!(!t.is_ancestor_or_self(ab, a));
        assert!(t.is_ancestor_or_self(a, a_b));
    }

    #[test]
    fn explicit_edges_beat_dot_parsing() {
        // insert_child builds structure without any string inspection, so
        // even names containing dots pair correctly.
        let mut t = PathTree::new();
        let root = Symbol::intern("root");
        let odd = Symbol::intern("odd.name.with.dots");
        t.insert_child(root, odd);
        assert_eq!(t.parent(odd), Some(root));
        assert!(t.is_ancestor_or_self(root, odd));
    }

    #[test]
    fn hier_path_structure() {
        let p = HierPath::intern("top.u.core");
        assert_eq!(p.parent(), Some(HierPath::intern("top.u")));
        assert_eq!(p.leaf(), "core");
        assert_eq!(p.depth(), 3);
        assert_eq!(p.segments().collect::<Vec<_>>(), vec!["top", "u", "core"]);
        assert_eq!(HierPath::intern("top").parent(), None);
        assert_eq!(HierPath::intern("top").leaf(), "top");
        assert_eq!(HierPath::intern("top.u").join("core"), p);
        assert_eq!(p.symbol(), Symbol::intern("top.u.core"));
    }

    #[test]
    fn hier_path_ancestry_splits_whole_segments() {
        let a = HierPath::intern("top.a");
        let ab = HierPath::intern("top.ab");
        let a_b = HierPath::intern("top.a.b");
        assert!(a.is_ancestor_of(a_b));
        assert!(a.is_ancestor_or_self(a));
        assert!(!a.is_ancestor_of(a));
        assert!(!a.is_ancestor_of(ab), "textual prefix is not an ancestor");
        assert!(!ab.is_ancestor_of(a));
        assert!(HierPath::intern("top").is_ancestor_of(ab));
    }

    #[test]
    fn tree_common_parent_walks_edges() {
        let t = PathTree::from_paths(
            [
                "top.u1.core.s0",
                "top.u1.core.s1",
                "top.u2.core.s0",
                "top.a.x",
                "top.ab.y",
            ]
            .map(Symbol::intern),
        );
        let lca = |ms: &[&str]| {
            t.common_parent(&ms.iter().map(|s| HierPath::intern(s)).collect::<Vec<_>>())
        };
        assert_eq!(lca(&[]), None);
        assert_eq!(
            lca(&["top.u1.core.s0", "top.u1.core.s1"]),
            Some(HierPath::intern("top.u1.core"))
        );
        assert_eq!(
            lca(&["top.u1.core.s0", "top.u2.core.s0"]),
            Some(HierPath::intern("top"))
        );
        // Textual-prefix siblings climb to the real dominator.
        assert_eq!(lca(&["top.a.x", "top.ab.y"]), Some(HierPath::intern("top")));
        assert_eq!(
            lca(&["top.u2.core.s0"]),
            Some(HierPath::intern("top.u2.core"))
        );
    }

    #[test]
    fn stable_hash_distinguishes_framing() {
        let mut h1 = StableHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = StableHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
        let mut h3 = StableHasher::new();
        h3.write_str("ab");
        h3.write_str("c");
        let mut h1b = StableHasher::new();
        h1b.write_str("ab");
        h1b.write_str("c");
        assert_eq!(h1b.finish(), h3.finish());
    }
}
