//! Property tests for the interner: round-tripping, identity, ordering,
//! and path-tree ancestor semantics on arbitrary generated names.

use alice_intern::{HierPath, PathTree, StableHasher, Symbol};
use proptest::prelude::*;

/// Deterministically decodes a code vector into an identifier-ish name
/// (letters, digits, `_`, `$` — the Verilog identifier alphabet).
fn name_of(codes: &[u32]) -> String {
    const ALPHABET: &[u8; 64] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$";
    codes
        .iter()
        .map(|&c| ALPHABET[(c as usize) % ALPHABET.len()] as char)
        .collect()
}

/// A dotted instance path from segment code vectors.
fn path_of(segs: &[Vec<u32>]) -> String {
    segs.iter()
        .map(|s| name_of(s))
        .collect::<Vec<_>>()
        .join(".")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interning round-trips arbitrary names and is idempotent: the same
    /// text always yields the same symbol, and the symbol always yields
    /// the text back.
    #[test]
    fn intern_round_trips(codes in prop::collection::vec(0u32..64, 1..40)) {
        let name = name_of(&codes);
        let a = Symbol::intern(&name);
        let b = Symbol::intern(&name);
        prop_assert_eq!(a, b);
        prop_assert!(std::ptr::eq(a.as_str(), b.as_str()));
        prop_assert_eq!(a.as_str(), name.as_str());
        prop_assert_eq!(a.to_string(), name);
    }

    /// Symbol equality coincides with string equality, and symbol `Ord`
    /// coincides with string `Ord` regardless of interning order.
    #[test]
    fn symbol_order_mirrors_string_order(
        a in prop::collection::vec(0u32..64, 1..24),
        b in prop::collection::vec(0u32..64, 1..24),
    ) {
        let (sa, sb) = (name_of(&a), name_of(&b));
        let (xa, xb) = (Symbol::intern(&sa), Symbol::intern(&sb));
        prop_assert_eq!(xa == xb, sa == sb);
        prop_assert_eq!(xa.cmp(&xb), sa.cmp(&sb));
    }

    /// A path tree built from dotted paths answers ancestor queries
    /// exactly like segment-prefix comparison (the specification the old
    /// string code approximated).
    #[test]
    fn path_tree_matches_segment_prefix_semantics(
        a in prop::collection::vec(prop::collection::vec(0u32..8, 1..3), 1..5),
        b in prop::collection::vec(prop::collection::vec(0u32..8, 1..3), 1..5),
    ) {
        let (pa, pb) = (path_of(&a), path_of(&b));
        let (xa, xb) = (Symbol::intern(&pa), Symbol::intern(&pb));
        let tree = PathTree::from_paths([xa, xb]);
        let segs = |p: &str| p.split('.').map(str::to_string).collect::<Vec<_>>();
        let (ga, gb) = (segs(&pa), segs(&pb));
        let expect = ga.len() <= gb.len() && gb[..ga.len()] == ga[..];
        prop_assert_eq!(tree.is_ancestor_or_self(xa, xb), expect, "{} vs {}", pa, pb);
    }

    /// `HierPath::is_ancestor_of` / `is_ancestor_or_self` agree with the
    /// segment-split specification on arbitrary dotted paths — including
    /// textual-prefix siblings like `top.a` vs `top.ab`, which a naive
    /// `starts_with` check conflates.
    #[test]
    fn hier_path_matches_segment_split_spec(
        a in prop::collection::vec(prop::collection::vec(0u32..8, 1..3), 1..5),
        b in prop::collection::vec(prop::collection::vec(0u32..8, 1..3), 1..5),
    ) {
        let (pa, pb) = (path_of(&a), path_of(&b));
        let (ha, hb) = (HierPath::intern(&pa), HierPath::intern(&pb));
        let segs = |p: &str| p.split('.').map(str::to_string).collect::<Vec<_>>();
        let (ga, gb) = (segs(&pa), segs(&pb));
        let spec = ga.len() <= gb.len() && gb[..ga.len()] == ga[..];
        prop_assert_eq!(ha.is_ancestor_or_self(hb), spec, "{} vs {}", pa, pb);
        prop_assert_eq!(ha.is_ancestor_of(hb), spec && pa != pb, "{} vs {}", pa, pb);
        // And the design-tree walk agrees with the same spec.
        let tree = PathTree::from_paths([ha.symbol(), hb.symbol()]);
        prop_assert_eq!(tree.path_is_ancestor_or_self(ha, hb), spec, "{} vs {}", pa, pb);
    }

    /// `parent`/`join`/`leaf`/`depth` are consistent: a non-root path is
    /// its parent joined with its leaf, depth counts segments, and the
    /// tree's edge-walk parent matches the segment-split parent.
    #[test]
    fn hier_path_parent_join_round_trip(
        p in prop::collection::vec(prop::collection::vec(0u32..8, 1..3), 1..6),
    ) {
        let text = path_of(&p);
        let h = HierPath::intern(&text);
        prop_assert_eq!(h.depth(), p.len());
        match h.parent() {
            Some(par) => {
                prop_assert_eq!(par.join(h.leaf()), h);
                prop_assert!(par.is_ancestor_of(h));
            }
            None => prop_assert_eq!(h.depth(), 1),
        }
        let tree = PathTree::from_paths([h.symbol()]);
        prop_assert_eq!(tree.parent_path(h), h.parent());
    }

    /// The content hasher is deterministic and input-sensitive: equal
    /// byte sequences agree, an appended byte disagrees.
    #[test]
    fn stable_hash_is_deterministic(codes in prop::collection::vec(0u32..64, 0..64)) {
        let name = name_of(&codes);
        let digest = |s: &str| {
            let mut h = StableHasher::new();
            h.write_str(s);
            h.finish()
        };
        prop_assert_eq!(digest(&name), digest(&name));
        let mut longer = name.clone();
        longer.push('x');
        prop_assert!(digest(&name) != digest(&longer));
    }
}
