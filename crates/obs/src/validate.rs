//! Structural validation of Chrome trace-event JSON.
//!
//! Used by the test suite and the CI `trace_check` gate: beyond "the
//! JSON parses", it checks that every complete event carries the
//! required fields and that the event intervals are properly nested
//! within each thread lane (a malformed exporter would produce
//! overlapping siblings, which Perfetto renders misleadingly).

use crate::json::Json;
use std::collections::{BTreeMap, BTreeSet};

/// What a validated trace contains, for assertions on coverage.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Number of `ph: "X"` span events.
    pub events: usize,
    /// Number of distinct thread lanes with at least one span.
    pub threads: usize,
    /// Distinct span names.
    pub span_names: BTreeSet<String>,
    /// Thread-lane labels from `thread_name` metadata events.
    pub thread_names: BTreeSet<String>,
    /// Deepest nesting observed in any lane (1 = no nesting).
    pub max_depth: usize,
}

impl TraceSummary {
    /// Whether any span with this exact name occurred.
    pub fn has_span(&self, name: &str) -> bool {
        self.span_names.contains(name)
    }
}

/// Tolerance when comparing microsecond timestamps (1 ns, i.e. the
/// exporter's own resolution).
const EPS_US: f64 = 0.001;

/// Parses and structurally validates a Chrome trace-event JSON
/// document, returning a [`TraceSummary`] on success.
///
/// # Errors
///
/// Returns a message describing the first problem found: malformed
/// JSON, a missing `traceEvents` array, a span event without
/// `name`/`ts`/`dur`/`tid`, or spans that overlap without nesting
/// within one thread lane.
pub fn validate_chrome_trace(src: &str) -> Result<TraceSummary, String> {
    let doc = Json::parse(src).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut summary = TraceSummary::default();
    // (start_us, dur_us, name) per tid.
    let mut lanes: BTreeMap<u64, Vec<(f64, f64, String)>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        match ph {
            "X" => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .filter(|n| !n.is_empty())
                    .ok_or_else(|| format!("event {i}: missing `name`"))?;
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .filter(|t| *t >= 0.0)
                    .ok_or_else(|| format!("event {i}: missing `ts`"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .filter(|d| *d >= 0.0)
                    .ok_or_else(|| format!("event {i}: missing `dur`"))?;
                let tid = ev
                    .get("tid")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {i}: missing `tid`"))?;
                summary.events += 1;
                summary.span_names.insert(name.to_string());
                lanes
                    .entry(tid)
                    .or_default()
                    .push((ts, dur, name.to_string()));
            }
            "M" if ev.get("name").and_then(Json::as_str) == Some("thread_name") => {
                if let Some(label) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    summary.thread_names.insert(label.to_string());
                }
            }
            _ => {}
        }
    }
    summary.threads = lanes.len();
    for (tid, spans) in &mut lanes {
        summary.max_depth = summary.max_depth.max(check_lane(*tid, spans)?);
    }
    Ok(summary)
}

/// Checks one lane for proper nesting, returning its max depth.
///
/// Sorted by (start asc, duration desc), each span must either start
/// after the enclosing span ends (a sibling) or end within it (a
/// child) — partial overlap is a structural error.
fn check_lane(tid: u64, spans: &mut [(f64, f64, String)]) -> Result<usize, String> {
    spans.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
    });
    let mut stack: Vec<(f64, String)> = Vec::new(); // (end_us, name)
    let mut max_depth = 0usize;
    for (start, dur, name) in spans.iter() {
        let end = start + dur;
        while let Some((top_end, _)) = stack.last() {
            if *top_end <= start + EPS_US {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some((top_end, top_name)) = stack.last() {
            if end > top_end + EPS_US {
                return Err(format!(
                    "tid {tid}: span `{name}` [{start:.3}, {end:.3}] overlaps \
                     `{top_name}` ending at {top_end:.3} without nesting"
                ));
            }
        }
        stack.push((end, name.clone()));
        max_depth = max_depth.max(stack.len());
    }
    Ok(max_depth)
}
