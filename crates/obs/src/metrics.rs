//! Process-wide metric registry: atomic counters, gauges, and
//! histograms that export as a Prometheus-style text snapshot.
//!
//! Metrics are declared as `static` items with `const` constructors
//! and self-register into a global intrusive list the first time they
//! are touched while metrics are enabled — no registration call, no
//! allocation, no lock on the hot path. While metrics are disabled
//! every update is one relaxed atomic load and a branch.
//!
//! ```
//! use alice_obs::{enable_metrics, snapshot_prometheus, Counter, Histogram};
//!
//! static HITS: Counter = Counter::new("alice_doc_hits_total", "Doc cache hits");
//! static LATENCY: Histogram =
//!     Histogram::new("alice_doc_latency_us", "Doc latency (µs)");
//!
//! enable_metrics();
//! HITS.inc();
//! LATENCY.observe(1500);
//! let text = snapshot_prometheus();
//! assert!(text.contains("alice_doc_hits_total 1"));
//! assert!(text.contains("alice_doc_latency_us_count 1"));
//! ```

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::time::Duration;

/// Master switch; off means every update is a relaxed load + branch.
static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// Heads of the per-kind intrusive registration lists.
static COUNTERS: AtomicPtr<Counter> = AtomicPtr::new(ptr::null_mut());
static GAUGES: AtomicPtr<Gauge> = AtomicPtr::new(ptr::null_mut());
static HISTOGRAMS: AtomicPtr<Histogram> = AtomicPtr::new(ptr::null_mut());

/// Turns metric recording on (idempotent).
pub fn enable_metrics() {
    METRICS_ON.store(true, Ordering::Relaxed);
}

/// Turns metric recording off; accumulated values are kept.
pub fn disable_metrics() {
    METRICS_ON.store(false, Ordering::Relaxed);
}

/// Whether metric updates are currently recorded.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Pushes a node onto an intrusive list exactly once. `registered`
/// guards the push; `next` is the node's list link. Nodes are
/// `'static`, so traversal never observes a dangling pointer.
fn register_once<T>(
    node: &'static T,
    registered: &AtomicBool,
    next: &AtomicPtr<T>,
    head: &AtomicPtr<T>,
) {
    if registered.swap(true, Ordering::AcqRel) {
        return;
    }
    let node_ptr = node as *const T as *mut T;
    let mut cur = head.load(Ordering::Acquire);
    loop {
        next.store(cur, Ordering::Release);
        match head.compare_exchange_weak(cur, node_ptr, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => break,
            Err(observed) => cur = observed,
        }
    }
}

/// Walks an intrusive list, calling `f` on every registered node.
fn for_each<T: 'static, F: FnMut(&'static T)>(
    head: &AtomicPtr<T>,
    next_of: fn(&T) -> &AtomicPtr<T>,
    mut f: F,
) {
    let mut cur = head.load(Ordering::Acquire);
    while !cur.is_null() {
        // SAFETY: only `&'static` nodes are ever pushed (see
        // `register_once`), so the pointer is valid for 'static.
        let node: &'static T = unsafe { &*cur };
        f(node);
        cur = next_of(node).load(Ordering::Acquire);
    }
}

/// Monotonically increasing event count (`TYPE counter`).
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
    next: AtomicPtr<Counter>,
}

impl Counter {
    /// Declares a counter; use in a `static` item.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Counter {
            name,
            help,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Adds `n` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        register_once(self, &self.registered, &self.next, &COUNTERS);
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous level that can move both ways (`TYPE gauge`).
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
    next: AtomicPtr<Gauge>,
}

impl Gauge {
    /// Declares a gauge; use in a `static` item.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Gauge {
            name,
            help,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Sets the level (no-op while metrics are disabled).
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        register_once(self, &self.registered, &self.next, &GAUGES);
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two histogram buckets; the last finite bound is
/// 2^24 (≈16.8 s when observing microseconds).
const BUCKETS: usize = 26;

/// Log₂-bucketed distribution (`TYPE histogram`). Bucket upper bounds
/// are `1, 2, 4, …, 2^24, +Inf`; the unit is whatever the caller
/// observes (durations conventionally in microseconds via
/// [`Histogram::observe_duration`]).
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    registered: AtomicBool,
    next: AtomicPtr<Histogram>,
}

impl Histogram {
    /// Declares a histogram; use in a `static` item.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            help,
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            registered: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Records one observation (no-op while metrics are disabled).
    #[inline]
    pub fn observe(&'static self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        register_once(self, &self.registered, &self.next, &HISTOGRAMS);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    #[inline]
    pub fn observe_duration(&'static self, d: Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// Index of the first bucket whose upper bound (`2^i`) holds `v`.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Zeroes every registered metric (test hook; registration survives).
pub fn reset_metrics() {
    for_each(
        &COUNTERS,
        |c| &c.next,
        |c| {
            c.value.store(0, Ordering::Relaxed);
        },
    );
    for_each(
        &GAUGES,
        |g| &g.next,
        |g| {
            g.value.store(0, Ordering::Relaxed);
        },
    );
    for_each(
        &HISTOGRAMS,
        |h| &h.next,
        |h| {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.sum.store(0, Ordering::Relaxed);
            h.count.store(0, Ordering::Relaxed);
        },
    );
}

/// Renders every registered metric in the Prometheus text exposition
/// format, families sorted by name for deterministic output.
pub fn snapshot_prometheus() -> String {
    let mut families: Vec<(String, String)> = Vec::new();
    for_each(
        &COUNTERS,
        |c| &c.next,
        |c| {
            families.push((
                c.name.to_string(),
                format!(
                    "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n",
                    name = c.name,
                    help = c.help,
                    v = c.get()
                ),
            ));
        },
    );
    for_each(
        &GAUGES,
        |g| &g.next,
        |g| {
            families.push((
                g.name.to_string(),
                format!(
                    "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n",
                    name = g.name,
                    help = g.help,
                    v = g.get()
                ),
            ));
        },
    );
    for_each(
        &HISTOGRAMS,
        |h| &h.next,
        |h| {
            let mut body = format!(
                "# HELP {name} {help}\n# TYPE {name} histogram\n",
                name = h.name,
                help = h.help
            );
            let mut cumulative = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                cumulative += b.load(Ordering::Relaxed);
                if i + 1 < BUCKETS {
                    body.push_str(&format!(
                        "{}_bucket{{le=\"{}\"}} {}\n",
                        h.name,
                        1u64 << i,
                        cumulative
                    ));
                }
            }
            body.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {count}\n{name}_sum {sum}\n{name}_count {count}\n",
                name = h.name,
                sum = h.sum(),
                count = h.count()
            ));
            families.push((h.name.to_string(), body));
        },
    );
    families.sort();
    let mut out = String::new();
    for (_, body) in families {
        out.push_str(&body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::obs_test_lock;

    #[test]
    fn counter_and_gauge_register_and_export() {
        let _guard = obs_test_lock();
        static C: Counter = Counter::new("alice_test_counter_total", "Test counter");
        static G: Gauge = Gauge::new("alice_test_gauge", "Test gauge");
        enable_metrics();
        C.inc();
        C.add(2);
        G.set(7);
        assert_eq!(C.get(), 3);
        assert_eq!(G.get(), 7);
        let text = snapshot_prometheus();
        assert!(text.contains("# TYPE alice_test_counter_total counter"));
        assert!(text.contains("alice_test_counter_total 3"));
        assert!(text.contains("# TYPE alice_test_gauge gauge"));
        assert!(text.contains("alice_test_gauge 7"));
        disable_metrics();
        C.inc();
        assert_eq!(C.get(), 3, "disabled counter must not move");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let _guard = obs_test_lock();
        static H: Histogram = Histogram::new("alice_test_hist_us", "Test histogram");
        enable_metrics();
        // Zero the slate in case another test already registered H.
        for b in &H.buckets {
            b.store(0, Ordering::Relaxed);
        }
        H.sum.store(0, Ordering::Relaxed);
        H.count.store(0, Ordering::Relaxed);
        H.observe(1);
        H.observe(3);
        H.observe(u64::MAX / 2); // far past the last finite bound
        H.observe_duration(Duration::from_micros(2));
        assert_eq!(H.count(), 4);
        let text = snapshot_prometheus();
        assert!(text.contains("alice_test_hist_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("alice_test_hist_us_bucket{le=\"2\"} 2"));
        assert!(text.contains("alice_test_hist_us_bucket{le=\"4\"} 3"));
        assert!(text.contains("alice_test_hist_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("alice_test_hist_us_count 4"));
        disable_metrics();
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 24), 24);
        assert_eq!(bucket_index((1 << 24) + 1), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn reset_zeroes_registered_metrics() {
        let _guard = obs_test_lock();
        static C: Counter = Counter::new("alice_test_reset_total", "Reset test");
        enable_metrics();
        C.inc();
        assert!(C.get() >= 1);
        reset_metrics();
        assert_eq!(C.get(), 0);
        disable_metrics();
    }
}
