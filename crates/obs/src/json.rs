//! Minimal JSON parser for trace validation.
//!
//! The offline crate set has no serde, so — like the YAML subset in
//! `alice-core` and the numeric-leaf walker in `bench_diff` — this is
//! a small hand-rolled recursive-descent parser. It accepts the full
//! JSON grammar (objects, arrays, strings with escapes incl. surrogate
//! pairs, numbers, booleans, null) and rejects trailing garbage.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as `f64`.
    Num(f64),
    /// String with escapes decoded.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, entries in source order (duplicate keys kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset for
    /// malformed input, nesting deeper than 256, or trailing garbage.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array items (`None` on non-arrays).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// String contents (`None` on non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value (`None` on non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => {
                let mut out = String::new();
                crate::span::escape_json_str(s, &mut out);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut key = String::new();
                    crate::span::escape_json_str(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // char boundaries are sound).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, leaving `pos` past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" {"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}} "#;
        let v = Json::parse(doc).expect("parse");
        let a = v.get("a").and_then(Json::as_arr).expect("a");
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("b").and_then(|b| b.get("e")), Some(&Json::Null));
    }

    #[test]
    fn decodes_unicode_escapes() {
        let v = Json::parse(r#""é😀""#).expect("parse");
        assert_eq!(v.as_str(), Some("\u{e9}\u{1f600}"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\": 1,}").is_err(), "trailing comma");
        assert!(Json::parse("[1, 2] extra").is_err(), "trailing garbage");
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err(), "missing colon");
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(300) + &"]".repeat(300);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn as_u64_requires_nonnegative_integer() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn display_round_trips() {
        let doc = r#"{"k":["a\"b",1,true,null]}"#;
        let v = Json::parse(doc).expect("parse");
        assert_eq!(Json::parse(&v.to_string()).expect("reparse"), v);
    }
}
