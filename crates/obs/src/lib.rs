//! Unified observability for the ALICE flow: hierarchical spans, a
//! process-wide metric registry, and two exporters.
//!
//! The flow's instrumentation used to be siloed — `PhaseTimings` in core,
//! `SweepStats` in cec, `ReadStats` in store, conflict counts behind
//! `SatEngine` — with no single answer to "where did this run's
//! wall-clock go?". This crate is the shared layer underneath all of
//! them:
//!
//! * **Spans** ([`span()`], [`span!`]): RAII guards that record one
//!   Chrome-trace "complete" event per scope, one lane per worker
//!   thread. Load the exported file in [Perfetto](https://ui.perfetto.dev)
//!   (or `chrome://tracing`) for a flame view of a run.
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]): `static`
//!   atomics that self-register into a global list on first touch and
//!   export as a Prometheus-style text snapshot
//!   ([`snapshot_prometheus`]).
//! * **Validation** ([`validate_chrome_trace`]): a dependency-free
//!   JSON parser plus structural checks (well-nested per thread) used
//!   by the test suite and the CI `trace_check` gate.
//!
//! Everything is off by default. Until [`enable_tracing`] /
//! [`enable_metrics`] is called, every span and every counter update
//! costs exactly one relaxed atomic load and one branch — no
//! allocation, no time stamp, no lock — so uninstrumented runs stay
//! bench-identical.
//!
//! ```
//! use alice_obs as obs;
//!
//! static SOLVES: obs::Counter =
//!     obs::Counter::new("alice_demo_solves_total", "Demo solve count");
//!
//! obs::enable_tracing();
//! obs::enable_metrics();
//! {
//!     obs::span!("demo.solve");
//!     SOLVES.inc();
//! }
//! let trace = obs::take_trace();
//! assert_eq!(trace.events.len(), 1);
//! assert_eq!(trace.events[0].name, "demo.solve");
//! let summary = obs::validate_chrome_trace(&trace.to_chrome_json()).unwrap();
//! assert!(summary.has_span("demo.solve"));
//! assert!(obs::snapshot_prometheus().contains("alice_demo_solves_total"));
//! obs::disable_tracing();
//! obs::disable_metrics();
//! ```

mod json;
mod metrics;
mod span;
mod validate;

pub use json::Json;
pub use metrics::{
    disable_metrics, enable_metrics, metrics_enabled, reset_metrics, snapshot_prometheus, Counter,
    Gauge, Histogram,
};
pub use span::{
    disable_tracing, enable_tracing, set_thread_name, span, span_with, take_trace,
    trace_event_count, tracing_enabled, write_chrome_trace, SpanGuard, Trace, TraceEvent,
};
pub use validate::{validate_chrome_trace, TraceSummary};

/// Opens a named span for the rest of the enclosing scope.
///
/// `span!("stage.select")` expands to a hidden [`SpanGuard`] binding
/// that records one trace event when the scope ends. A second
/// `format!`-style argument list attaches a lazily-built detail string
/// (only evaluated while tracing is enabled):
///
/// ```
/// # use alice_obs::span;
/// span!("stage.select");
/// span!("store.flush.shard", "shard {}", 3);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _alice_obs_span = $crate::span($name);
    };
    ($name:expr, $($fmt:tt)+) => {
        let _alice_obs_span = $crate::span_with($name, || format!($($fmt)+));
    };
}

#[cfg(test)]
pub(crate) mod tests {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that toggle the global tracing/metrics
    /// switches or drain the shared event buffer.
    pub(crate) fn obs_test_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
