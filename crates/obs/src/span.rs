//! Hierarchical spans and the Chrome trace-event exporter.
//!
//! A [`SpanGuard`] records one "complete" (`ph: "X"`) event when it is
//! dropped; because guards drop in LIFO order within a thread, the
//! per-thread event intervals are properly nested and Perfetto renders
//! them as a flame view with one lane per worker thread. Thread lanes
//! are labelled via [`set_thread_name`] (emitted as `ph: "M"`
//! `thread_name` metadata events).

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Master switch; off means `span()` is a relaxed load + branch.
static TRACE_ON: AtomicBool = AtomicBool::new(false);

/// Monotonic time base shared by every event (set on first use so
/// timestamps are comparable across threads).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Completed span events, appended at guard drop.
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// `(tid, name)` pairs registered via [`set_thread_name`].
static THREAD_NAMES: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());

/// Events discarded past [`MAX_EVENTS`] (kept so truncation is loud).
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Hard cap on buffered events; a runaway sweep degrades to a
/// truncated trace instead of unbounded memory.
const MAX_EVENTS: usize = 1 << 21;

/// Next lane number; lanes are small dense integers, not OS thread ids.
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u32 {
    TID.with(|t| *t)
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One completed span: a Chrome-trace "complete" event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (static so flame-view aggregation groups by call
    /// site, e.g. `stage.select` or `cec.pair_proof`).
    pub name: &'static str,
    /// Optional per-instance detail, exported under `args.detail`.
    pub detail: Option<String>,
    /// Start, in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Trace lane (dense per-thread integer, not the OS thread id).
    pub tid: u32,
}

/// A drained trace: events plus the thread-name table.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed events, in drop order.
    pub events: Vec<TraceEvent>,
    /// `(tid, name)` lane labels from [`set_thread_name`].
    pub thread_names: Vec<(u32, String)>,
    /// Events discarded because the in-memory buffer hit its cap.
    pub dropped: u64,
}

/// Turns span recording on (idempotent). The calling thread's lane is
/// labelled `main` unless it already has a name.
pub fn enable_tracing() {
    EPOCH.get_or_init(Instant::now);
    TRACE_ON.store(true, Ordering::Relaxed);
    let tid = current_tid();
    let mut names = THREAD_NAMES.lock().unwrap();
    if !names.iter().any(|(t, _)| *t == tid) {
        names.push((tid, "main".to_string()));
    }
}

/// Turns span recording off; buffered events stay until
/// [`take_trace`].
pub fn disable_tracing() {
    TRACE_ON.store(false, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Labels the current thread's trace lane (no-op while tracing is
/// disabled). Call once right after spawning a worker.
pub fn set_thread_name(name: &str) {
    if !tracing_enabled() {
        return;
    }
    let tid = current_tid();
    let mut names = THREAD_NAMES.lock().unwrap();
    if let Some(slot) = names.iter_mut().find(|(t, _)| *t == tid) {
        slot.1 = name.to_string();
    } else {
        names.push((tid, name.to_string()));
    }
}

/// Number of events currently buffered (test hook).
pub fn trace_event_count() -> usize {
    EVENTS.lock().unwrap().len()
}

/// Drains the buffered events and thread names, returning them as a
/// [`Trace`] and leaving the buffer empty.
pub fn take_trace() -> Trace {
    let events = std::mem::take(&mut *EVENTS.lock().unwrap());
    let thread_names = THREAD_NAMES.lock().unwrap().clone();
    Trace {
        events,
        thread_names,
        dropped: DROPPED.swap(0, Ordering::Relaxed),
    }
}

/// RAII span: records one [`TraceEvent`] when dropped. Obtain via
/// [`span`], [`span_with`], or the [`span!`](macro@crate::span) macro.
#[must_use = "a span measures the scope it lives in; bind it with `let`"]
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    name: &'static str,
    detail: Option<String>,
    start_ns: u64,
    tid: u32,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let end_ns = now_ns();
        let mut events = EVENTS.lock().unwrap();
        if events.len() >= MAX_EVENTS {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(TraceEvent {
            name: active.name,
            detail: active.detail,
            start_ns: active.start_ns,
            dur_ns: end_ns.saturating_sub(active.start_ns),
            tid: active.tid,
        });
    }
}

/// Opens a span; the returned guard records the event on drop. While
/// tracing is disabled this is one relaxed load + branch and the guard
/// is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(ActiveSpan {
        name,
        detail: None,
        start_ns: now_ns(),
        tid: current_tid(),
    }))
}

/// Like [`span`] but attaches a detail string built only while tracing
/// is enabled (so the formatting cost is never paid on the fast path).
#[inline]
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(ActiveSpan {
        name,
        detail: Some(detail()),
        start_ns: now_ns(),
        tid: current_tid(),
    }))
}

impl Trace {
    /// Serializes to Chrome trace-event JSON (the `traceEvents` array
    /// format understood by Perfetto and `chrome://tracing`).
    /// Timestamps are microseconds with nanosecond precision.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<&TraceEvent> = self.events.iter().collect();
        events.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.dur_ns.cmp(&a.dur_ns))
                .then(a.tid.cmp(&b.tid))
        });
        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in &self.thread_names {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":");
            escape_json_str(name, &mut out);
            out.push_str("}}");
        }
        for ev in events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            escape_json_str(ev.name, &mut out);
            out.push_str(",\"cat\":\"alice\",\"ph\":\"X\",\"ts\":");
            push_us(ev.start_ns, &mut out);
            out.push_str(",\"dur\":");
            push_us(ev.dur_ns, &mut out);
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&ev.tid.to_string());
            if let Some(detail) = &ev.detail {
                out.push_str(",\"args\":{\"detail\":");
                escape_json_str(detail, &mut out);
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"");
        if self.dropped > 0 {
            out.push_str(&format!(",\"aliceDroppedEvents\":{}", self.dropped));
        }
        out.push('}');
        out
    }
}

/// Formats `ns` as microseconds with 3 decimal places (`12.345`).
fn push_us(ns: u64, out: &mut String) {
    out.push_str(&(ns / 1000).to_string());
    out.push('.');
    out.push_str(&format!("{:03}", ns % 1000));
}

/// JSON string literal with the escapes the exporter needs.
pub(crate) fn escape_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Drains the current trace and writes Chrome trace-event JSON to
/// `path`, returning the number of span events written.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<usize> {
    let trace = take_trace();
    std::fs::write(path, trace.to_chrome_json())?;
    Ok(trace.events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::obs_test_lock;
    use crate::validate_chrome_trace;

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = obs_test_lock();
        disable_tracing();
        let _ = take_trace();
        {
            let _a = span("test.disabled");
            let _b = span_with("test.disabled.detail", || unreachable!("lazy detail"));
        }
        assert_eq!(trace_event_count(), 0);
    }

    #[test]
    fn nested_spans_export_and_validate() {
        let _guard = obs_test_lock();
        enable_tracing();
        let _ = take_trace();
        {
            let _outer = span("test.outer");
            {
                let _inner = span_with("test.inner", || "detail \"quoted\"".to_string());
            }
        }
        let handle = std::thread::spawn(|| {
            set_thread_name("test worker");
            let _w = span("test.worker");
        });
        handle.join().unwrap();
        disable_tracing();
        let trace = take_trace();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.dropped, 0);
        let inner = trace
            .events
            .iter()
            .find(|e| e.name == "test.inner")
            .unwrap();
        let outer = trace
            .events
            .iter()
            .find(|e| e.name == "test.outer")
            .unwrap();
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        let worker = trace
            .events
            .iter()
            .find(|e| e.name == "test.worker")
            .unwrap();
        assert_ne!(worker.tid, outer.tid, "worker gets its own lane");

        let json = trace.to_chrome_json();
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.events, 3);
        assert_eq!(summary.threads, 2);
        assert!(summary.has_span("test.outer"));
        assert!(summary.has_span("test.inner"));
        assert!(summary.thread_names.contains("test worker"));
        assert!(summary.thread_names.contains("main"));
        assert!(summary.max_depth >= 2);
        assert_eq!(trace_event_count(), 0, "take_trace drains");
    }

    #[test]
    fn validator_rejects_overlap_and_garbage() {
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("overlaps"), "got: {err}");
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err(), "no traceEvents");
        let missing = r#"{"traceEvents":[{"ph":"X","ts":0,"dur":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(missing).is_err(), "missing name");
        let sibling = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":5,"dur":5,"pid":1,"tid":1},
            {"name":"c","ph":"X","ts":0,"dur":4,"pid":1,"tid":2}]}"#;
        let ok = validate_chrome_trace(sibling).expect("siblings are fine");
        assert_eq!(ok.threads, 2);
        assert_eq!(ok.max_depth, 1);
    }

    #[test]
    fn timestamps_format_as_microseconds() {
        let mut s = String::new();
        push_us(12_345_678, &mut s);
        assert_eq!(s, "12345.678");
        s.clear();
        push_us(5, &mut s);
        assert_eq!(s, "0.005");
    }
}
