//! # alice-redaction
//!
//! A complete Rust reproduction of **ALICE: An Automatic Design Flow for
//! eFPGA Redaction** (DAC 2022), including every substrate the flow needs:
//! a Verilog frontend, logic synthesis, LUT mapping, an eFPGA fabric model,
//! an ASIC cost model, and a SAT-attack security harness.
//!
//! This crate is a facade that re-exports the workspace crates under one
//! name. See the individual crates for details:
//!
//! * [`verilog`] — Verilog subset parser/printer (PyVerilog substitute)
//! * [`dataflow`] — design graph, output cones, dominator analysis
//! * [`netlist`] — gate-level IR, elaboration, optimization, LUT mapping
//! * [`fabric`] — eFPGA architecture, packing, sizing, bitstream
//! * [`asic`] — standard-cell cost model and floorplanning
//! * [`attacks`] — CDCL SAT solver and oracle-guided SAT attack
//! * [`obs`] — spans, metrics, and trace/metrics exporters (the
//!   observability layer every crate above reports into)
//! * [`cec`] — SAT-based combinational equivalence checking (miter,
//!   bitstream binding, wrong-key corruptibility)
//! * [`store`] — persistent content-addressed artifact store (cross-
//!   process characterization + CEC proof caching)
//! * [`core`] — the ALICE flow itself (filtering, clustering, selection)
//! * [`benchmarks`] — the DAC'22 benchmark suite (Table 1)
//!
//! # Quickstart
//!
//! ```
//! use alice_redaction::core::config::AliceConfig;
//! use alice_redaction::core::flow::Flow;
//! use alice_redaction::benchmarks::gcd;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = gcd::benchmark();
//! let design = bench.design()?;
//! let config = bench.config(AliceConfig::cfg1()); // 64 I/O pins, ≤2 eFPGAs
//! let outcome = Flow::new(config).run(&design)?;
//! assert!(outcome.redacted.is_some());
//! # Ok(())
//! # }
//! ```

pub use alice_asic as asic;
pub use alice_attacks as attacks;
pub use alice_benchmarks as benchmarks;
pub use alice_cec as cec;
pub use alice_core as core;
pub use alice_dataflow as dataflow;
pub use alice_fabric as fabric;
pub use alice_netlist as netlist;
pub use alice_obs as obs;
pub use alice_store as store;
pub use alice_verilog as verilog;
