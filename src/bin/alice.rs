//! `alice` — the command-line front end of the flow, mirroring Figure 3:
//! Verilog + YAML config in, redacted top + fabric netlists + bitstreams
//! out.
//!
//! ```text
//! alice <design.v> [--config flow.yaml] [--top NAME] [--out DIR]
//!       [--cfg1 | --cfg2] [--jobs N] [--report]
//!       [--verify] [--wrong-keys N] [--portfolio N] [--no-cache]
//!       [--store DIR] [--store-budget BYTES]
//!       [--trace FILE] [--metrics FILE]
//! alice store stats <DIR>
//! alice store gc <DIR> [--budget BYTES]
//! alice store clear <DIR>
//! ```
//!
//! `--trace FILE` records hierarchical spans across the whole run and
//! writes a Chrome trace-event JSON file (load it in Perfetto or
//! `chrome://tracing`); `--metrics FILE` writes a Prometheus-style text
//! snapshot of the process-wide counters. Both can also be set from the
//! YAML config (`trace:` / `metrics:`); the command line wins.

use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::design::Design;
use alice_redaction::core::flow::Flow;
use alice_redaction::store::Store;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: alice <design.v> [--config flow.yaml] [--top NAME] \
                     [--out DIR] [--cfg1 | --cfg2] [--jobs N] [--report] \
                     [--verify] [--wrong-keys N] [--portfolio N] [--no-cache] \
                     [--store DIR] [--store-budget BYTES] \
                     [--trace FILE] [--metrics FILE]\n\
                     \x20      alice store <stats|gc|clear> <DIR> [--budget BYTES]";

/// Default `alice store gc` budget when `--budget` is omitted: 256 MiB.
const DEFAULT_GC_BUDGET: u64 = 256 * 1024 * 1024;

#[derive(Debug)]
struct Args {
    design: PathBuf,
    config: Option<PathBuf>,
    top: Option<String>,
    out: PathBuf,
    preset: Option<&'static str>,
    jobs: Option<usize>,
    report_only: bool,
    verify: bool,
    wrong_keys: Option<usize>,
    portfolio: Option<usize>,
    no_cache: bool,
    store: Option<PathBuf>,
    store_budget: Option<u64>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
}

/// The `alice store <action> <DIR>` maintenance subcommand.
#[derive(Debug, PartialEq)]
struct StoreCmd {
    action: StoreAction,
    dir: PathBuf,
    budget: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreAction {
    Stats,
    Gc,
    Clear,
}

/// What one CLI invocation asks for.
#[derive(Debug)]
enum Command {
    Run(Box<Args>),
    Store(StoreCmd),
}

/// Parses a numeric flag value, rejecting out-of-range values with an
/// error that names the flag (`min` is the smallest accepted value).
fn parse_count(flag: &str, v: &str, min: usize) -> Result<usize, String> {
    let n: usize = v
        .parse()
        .map_err(|_| format!("invalid value for `{flag}`: `{v}`"))?;
    if n < min {
        return Err(format!(
            "invalid value for `{flag}`: `{v}` (must be at least {min})"
        ));
    }
    Ok(n)
}

/// Parses the `store` maintenance subcommand's arguments.
fn parse_store_cmd(argv: impl Iterator<Item = String>) -> Result<StoreCmd, String> {
    let mut it = argv;
    let action = match it.next().as_deref() {
        Some("stats") => StoreAction::Stats,
        Some("gc") => StoreAction::Gc,
        Some("clear") => StoreAction::Clear,
        Some(other) => return Err(format!("unknown store action `{other}`")),
        None => return Err("missing store action (stats, gc or clear)".to_string()),
    };
    let mut dir: Option<PathBuf> = None;
    let mut budget = DEFAULT_GC_BUDGET;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--budget" => {
                if action != StoreAction::Gc {
                    return Err("`--budget` only applies to `store gc`".to_string());
                }
                let v = it
                    .next()
                    .ok_or_else(|| "missing value for `--budget`".to_string())?;
                budget = v
                    .parse()
                    .map_err(|_| format!("invalid value for `--budget`: `{v}`"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            _ if dir.is_none() => dir = Some(PathBuf::from(a)),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let dir = dir.ok_or_else(|| "missing store <DIR> argument".to_string())?;
    Ok(StoreCmd {
        action,
        dir,
        budget,
    })
}

/// Parses the command line; every error names the offending flag.
/// `Ok(None)` means `--help` was requested (print usage, exit 0).
fn parse_args(argv: impl Iterator<Item = String>) -> Result<Option<Command>, String> {
    let mut args = Args {
        design: PathBuf::new(),
        config: None,
        top: None,
        out: PathBuf::from("alice_out"),
        preset: None,
        jobs: None,
        report_only: false,
        verify: false,
        wrong_keys: None,
        portfolio: None,
        no_cache: false,
        store: None,
        store_budget: None,
        trace: None,
        metrics: None,
    };
    let mut it = argv.peekable();
    // `alice store <stats|gc|clear> <DIR>` is a separate maintenance mode.
    if it.peek().map(String::as_str) == Some("store") {
        it.next();
        return parse_store_cmd(it).map(|c| Some(Command::Store(c)));
    }
    let mut positional = Vec::new();
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| -> Result<String, String> {
        it.next()
            .ok_or_else(|| format!("missing value for `{flag}`"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => args.config = Some(PathBuf::from(value(&mut it, "--config")?)),
            "--top" => args.top = Some(value(&mut it, "--top")?),
            "--out" => args.out = PathBuf::from(value(&mut it, "--out")?),
            "--store" => args.store = Some(PathBuf::from(value(&mut it, "--store")?)),
            "--trace" => args.trace = Some(PathBuf::from(value(&mut it, "--trace")?)),
            "--metrics" => args.metrics = Some(PathBuf::from(value(&mut it, "--metrics")?)),
            "--store-budget" => {
                let v = value(&mut it, "--store-budget")?;
                let budget: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid value for `--store-budget`: `{v}`"))?;
                if budget == 0 {
                    return Err(
                        "invalid value for `--store-budget`: `0` (must be at least 1)".to_string(),
                    );
                }
                args.store_budget = Some(budget);
            }
            "--jobs" => {
                // 0 ("auto") is spelled by omitting the flag, not `--jobs 0`.
                let v = value(&mut it, "--jobs")?;
                args.jobs = Some(parse_count("--jobs", &v, 1)?);
            }
            "--wrong-keys" => {
                let v = value(&mut it, "--wrong-keys")?;
                args.wrong_keys = Some(parse_count("--wrong-keys", &v, 1)?);
                args.verify = true; // the sweep implies verification
            }
            "--portfolio" => {
                // 1 = the classic single-solver path (the default).
                let v = value(&mut it, "--portfolio")?;
                args.portfolio = Some(parse_count("--portfolio", &v, 1)?);
            }
            "--verify" => args.verify = true,
            "--no-cache" => args.no_cache = true,
            "--cfg1" => args.preset = Some("cfg1"),
            "--cfg2" => args.preset = Some("cfg2"),
            "--report" => args.report_only = true,
            "--help" | "-h" => return Ok(None),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            _ => positional.push(a),
        }
    }
    match positional.len() {
        0 => return Err("missing <design.v> argument".to_string()),
        1 => args.design = PathBuf::from(&positional[0]),
        _ => {
            return Err(format!(
                "expected one design file, got {}: {}",
                positional.len(),
                positional.join(", ")
            ))
        }
    }
    Ok(Some(Command::Run(Box::new(args))))
}

/// Runs the `alice store` maintenance subcommand.
fn run_store_cmd(cmd: &StoreCmd) -> Result<(), Box<dyn std::error::Error>> {
    let store = Store::open(&cmd.dir)
        .map_err(|e| format!("cannot open store {}: {e}", cmd.dir.display()))?;
    match cmd.action {
        StoreAction::Stats => {
            let stats = store.stats();
            println!("{stats}");
            // The per-shard breakdown makes key-distribution skew (and
            // pending tombstones) visible at a glance.
            println!();
            print!("{}", stats.shard_table());
            let reads = store.read_stats();
            println!();
            println!(
                "reads (this handle): {} get(s), {} mapped, {} copied, {} byte(s) copied",
                reads.gets, reads.mapped_gets, reads.copied_gets, reads.bytes_copied
            );
        }
        StoreAction::Gc => {
            let report = store.gc(cmd.budget)?;
            println!(
                "gc: kept {} record(s) ({} bytes), evicted {} ({} -> {} bytes, budget {})",
                report.kept,
                report.bytes_after,
                report.dropped,
                report.bytes_before,
                report.bytes_after,
                cmd.budget
            );
        }
        StoreAction::Clear => {
            let before = store.stats();
            store.clear()?;
            println!(
                "clear: removed {} record(s) ({} bytes)",
                before.records(),
                before.bytes()
            );
        }
    }
    Ok(())
}

/// Writes the enabled observability sinks. Runs even when the flow
/// failed — a trace of the run that died is the one worth looking at.
fn export_observability(trace: Option<&PathBuf>, metrics: Option<&PathBuf>) {
    if let Some(path) = trace {
        match alice_redaction::obs::write_chrome_trace(path) {
            Ok(n) => eprintln!("alice: trace: {} event(s) -> {}", n, path.display()),
            Err(e) => eprintln!(
                "alice: warning: could not write trace {}: {e}",
                path.display()
            ),
        }
    }
    if let Some(path) = metrics {
        let text = alice_redaction::obs::snapshot_prometheus();
        match std::fs::write(path, text) {
            Ok(()) => eprintln!("alice: metrics -> {}", path.display()),
            Err(e) => eprintln!(
                "alice: warning: could not write metrics {}: {e}",
                path.display()
            ),
        }
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(&args.design)
        .map_err(|e| format!("cannot read {}: {e}", args.design.display()))?;
    let mut cfg = match args.preset {
        Some("cfg2") => AliceConfig::cfg2(),
        _ => AliceConfig::cfg1(),
    };
    if let Some(cpath) = &args.config {
        let ctext = std::fs::read_to_string(cpath)
            .map_err(|e| format!("cannot read {}: {e}", cpath.display()))?;
        cfg = AliceConfig::from_yaml(&ctext)?;
    }
    // The command line wins over the config file for the sinks.
    let trace = args.trace.clone().or(cfg.trace.clone());
    let metrics = args.metrics.clone().or(cfg.metrics.clone());
    if trace.is_some() {
        alice_redaction::obs::enable_tracing();
    }
    if metrics.is_some() {
        alice_redaction::obs::enable_metrics();
    }
    let result = run_flow(args, cfg, &src);
    export_observability(trace.as_ref(), metrics.as_ref());
    result
}

/// The flow proper: everything between sink setup and sink export.
fn run_flow(
    args: &Args,
    mut cfg: AliceConfig,
    src: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(jobs) = args.jobs {
        cfg.jobs = jobs;
    }
    if args.verify {
        cfg.verify = true;
    }
    if let Some(n) = args.wrong_keys {
        cfg.verify_wrong_keys = n;
    }
    if let Some(n) = args.portfolio {
        cfg.portfolio = n;
    }
    if args.no_cache {
        // A/B baseline: run every characterization from scratch.
        cfg.cache = false;
    }
    if let Some(dir) = &args.store {
        // The command line wins over the config file for the store too.
        cfg.store = Some(dir.clone());
    }
    if let Some(budget) = args.store_budget {
        cfg.store_budget = Some(budget);
    }
    let name = args
        .design
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "design".to_string());
    // The command line wins over the config file for the top module.
    let top = args.top.clone().or(cfg.top.clone());
    let design = Design::from_source(&name, src, top.as_deref())?;
    eprintln!(
        "alice: {} ({} instances), config: {cfg}, {} characterization job(s)",
        design.name,
        design.instance_paths().len(),
        cfg.effective_jobs()
    );
    let flow = Flow::new(cfg);
    let outcome = flow.run(&design)?;
    println!("{}", outcome.report);
    eprintln!(
        "alice: characterization cache: {} hit(s), {} miss(es), {} disk hit(s)",
        outcome.report.cache_hits, outcome.report.cache_misses, outcome.report.cache_disk_hits
    );
    if let Some(store) = flow.db().store() {
        if let Err(e) = flow.db().flush_store() {
            eprintln!(
                "alice: warning: could not persist store {}: {e}",
                store.path().display()
            );
        } else {
            let stats = store.stats();
            let reads = store.read_stats();
            eprintln!(
                "alice: store {}: {} record(s), {} byte(s); {} get(s) \
                 ({} mapped, {} copied, {} byte(s) copied)",
                store.path().display(),
                stats.records(),
                stats.bytes(),
                reads.gets,
                reads.mapped_gets,
                reads.copied_gets,
                reads.bytes_copied
            );
        }
    }
    if let Some(v) = &outcome.verify {
        eprintln!(
            "alice: verify: {} ({} points, {} vars, {} clauses)",
            v.outcome, v.diff_points, v.cnf_vars, v.cnf_clauses
        );
        if let Some(p) = &v.portfolio {
            eprintln!("alice: verify: portfolio {p}");
        }
        for wk in &v.wrong_keys {
            eprintln!(
                "alice: wrong key (flipping {} bit(s)): {}/{} outputs corrupted{} in {} µs{}",
                wk.flipped.len(),
                wk.corrupted,
                wk.total,
                if wk.complete { "" } else { " (budget hit)" },
                wk.solve_us,
                if wk.from_cache { " (cached)" } else { "" }
            );
        }
        if !v.outcome.is_equivalent() {
            return Err(format!("verification did not prove equivalence: {}", v.outcome).into());
        }
    }
    if args.report_only {
        return Ok(());
    }
    let Some(redacted) = &outcome.redacted else {
        eprintln!("alice: no feasible solution under this configuration");
        return Ok(());
    };
    std::fs::create_dir_all(&args.out)?;
    let top_path = args.out.join("top_asic.v");
    std::fs::write(&top_path, redacted.top_asic_verilog())?;
    let fabric_path = args.out.join("fabrics.v");
    std::fs::write(&fabric_path, &redacted.fabric_verilog)?;
    for (i, e) in redacted.efpgas.iter().enumerate() {
        let bits: String = e
            .config_stream
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        std::fs::write(args.out.join(format!("bitstream_e{i}.txt")), bits)?;
        eprintln!(
            "alice: eFPGA {i}: {} at `{}` redacting {:?} ({} config bits)",
            e.size,
            e.insertion_point,
            e.instances,
            e.config_stream.len()
        );
    }
    eprintln!(
        "alice: wrote {}, {} and {} bitstream file(s) — keep the bitstreams secret",
        top_path.display(),
        fabric_path.display(),
        redacted.efpgas.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let cmd = match parse_args(std::env::args().skip(1)) {
        Ok(Some(c)) => c,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("alice: error: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match &cmd {
        Command::Run(args) => run(args),
        Command::Store(store_cmd) => run_store_cmd(store_cmd),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("alice: error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<Args>, String> {
        match parse_args(args.iter().map(|s| s.to_string()))? {
            Some(Command::Run(a)) => Ok(Some(*a)),
            Some(Command::Store(c)) => panic!("expected a run command, got {c:?}"),
            None => Ok(None),
        }
    }

    fn parse_store(args: &[&str]) -> Result<StoreCmd, String> {
        match parse_args(args.iter().map(|s| s.to_string()))? {
            Some(Command::Store(c)) => Ok(c),
            other => panic!("expected a store command, got {other:?}"),
        }
    }

    #[test]
    fn jobs_zero_is_rejected_with_the_flag_named() {
        let err = parse(&["d.v", "--jobs", "0"]).expect_err("must reject");
        assert!(err.contains("--jobs"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&["d.v", "--jobs", "many"]).expect_err("must reject");
        assert!(err.contains("--jobs"), "{err}");
    }

    #[test]
    fn wrong_keys_zero_is_rejected_with_the_flag_named() {
        let err = parse(&["d.v", "--wrong-keys", "0"]).expect_err("must reject");
        assert!(err.contains("--wrong-keys"), "{err}");
    }

    #[test]
    fn verify_flags_parse() {
        let a = parse(&["d.v", "--verify"]).expect("ok").expect("args");
        assert!(a.verify);
        assert_eq!(a.wrong_keys, None);
        let a = parse(&["d.v", "--wrong-keys", "5"])
            .expect("ok")
            .expect("args");
        assert!(a.verify, "--wrong-keys implies --verify");
        assert_eq!(a.wrong_keys, Some(5));
    }

    #[test]
    fn portfolio_flag_parses() {
        let a = parse(&["d.v", "--portfolio", "4"])
            .expect("ok")
            .expect("args");
        assert_eq!(a.portfolio, Some(4));
        let a = parse(&["d.v"]).expect("ok").expect("args");
        assert_eq!(a.portfolio, None, "classic single solver by default");
        let err = parse(&["d.v", "--portfolio", "0"]).expect_err("must reject");
        assert!(err.contains("--portfolio"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn valid_jobs_still_parse() {
        let a = parse(&["d.v", "--jobs", "3"]).expect("ok").expect("args");
        assert_eq!(a.jobs, Some(3));
    }

    #[test]
    fn no_cache_parses() {
        let a = parse(&["d.v", "--no-cache"]).expect("ok").expect("args");
        assert!(a.no_cache);
        let a = parse(&["d.v"]).expect("ok").expect("args");
        assert!(!a.no_cache, "cache is on by default");
    }

    #[test]
    fn store_flag_parses() {
        let a = parse(&["d.v", "--store", "cache-dir"])
            .expect("ok")
            .expect("args");
        assert_eq!(a.store, Some(PathBuf::from("cache-dir")));
        let a = parse(&["d.v"]).expect("ok").expect("args");
        assert_eq!(a.store, None, "no store by default");
        let err = parse(&["d.v", "--store"]).expect_err("must reject");
        assert!(err.contains("--store"), "{err}");
    }

    #[test]
    fn store_budget_flag_parses() {
        let a = parse(&["d.v", "--store", "dir", "--store-budget", "1048576"])
            .expect("ok")
            .expect("args");
        assert_eq!(a.store_budget, Some(1_048_576));
        let a = parse(&["d.v"]).expect("ok").expect("args");
        assert_eq!(a.store_budget, None, "no auto-compaction by default");
        let err = parse(&["d.v", "--store-budget", "0"]).expect_err("must reject");
        assert!(err.contains("--store-budget"), "{err}");
        let err = parse(&["d.v", "--store-budget", "lots"]).expect_err("must reject");
        assert!(err.contains("--store-budget"), "{err}");
    }

    #[test]
    fn trace_and_metrics_flags_parse() {
        let a = parse(&["d.v", "--trace", "t.json", "--metrics", "m.prom"])
            .expect("ok")
            .expect("args");
        assert_eq!(a.trace, Some(PathBuf::from("t.json")));
        assert_eq!(a.metrics, Some(PathBuf::from("m.prom")));
        let a = parse(&["d.v"]).expect("ok").expect("args");
        assert_eq!(a.trace, None, "no trace sink by default");
        assert_eq!(a.metrics, None, "no metrics sink by default");
        let err = parse(&["d.v", "--trace"]).expect_err("must reject");
        assert!(err.contains("--trace"), "{err}");
        let err = parse(&["d.v", "--metrics"]).expect_err("must reject");
        assert!(err.contains("--metrics"), "{err}");
    }

    #[test]
    fn store_subcommand_parses() {
        let c = parse_store(&["store", "stats", "dir"]).expect("ok");
        assert_eq!(c.action, StoreAction::Stats);
        assert_eq!(c.dir, PathBuf::from("dir"));
        let c = parse_store(&["store", "gc", "dir", "--budget", "1024"]).expect("ok");
        assert_eq!(c.action, StoreAction::Gc);
        assert_eq!(c.budget, 1024);
        let c = parse_store(&["store", "gc", "dir"]).expect("ok");
        assert_eq!(c.budget, DEFAULT_GC_BUDGET);
        let c = parse_store(&["store", "clear", "dir"]).expect("ok");
        assert_eq!(c.action, StoreAction::Clear);
    }

    #[test]
    fn store_subcommand_errors_are_named() {
        let parse_raw = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string())).map(|_| ());
        let err = parse_raw(&["store"]).expect_err("must reject");
        assert!(err.contains("store action"), "{err}");
        let err = parse_raw(&["store", "frobnicate", "dir"]).expect_err("must reject");
        assert!(err.contains("frobnicate"), "{err}");
        let err = parse_raw(&["store", "gc", "dir", "--budget", "lots"]).expect_err("reject");
        assert!(err.contains("--budget"), "{err}");
        let err = parse_raw(&["store", "stats", "dir", "--budget", "9"]).expect_err("reject");
        assert!(err.contains("--budget"), "{err}");
        let err = parse_raw(&["store", "stats"]).expect_err("must reject");
        assert!(err.contains("<DIR>"), "{err}");
    }

    #[test]
    fn missing_values_and_unknown_flags_name_the_flag() {
        let err = parse(&["d.v", "--wrong-keys"]).expect_err("must reject");
        assert!(err.contains("--wrong-keys"), "{err}");
        let err = parse(&["d.v", "--frobnicate"]).expect_err("must reject");
        assert!(err.contains("--frobnicate"), "{err}");
    }
}
