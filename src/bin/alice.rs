//! `alice` — the command-line front end of the flow, mirroring Figure 3:
//! Verilog + YAML config in, redacted top + fabric netlists + bitstreams
//! out.
//!
//! ```text
//! alice <design.v> [--config flow.yaml] [--top NAME] [--out DIR]
//!       [--cfg1 | --cfg2] [--report]
//! ```

use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::design::Design;
use alice_redaction::core::flow::Flow;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    design: PathBuf,
    config: Option<PathBuf>,
    top: Option<String>,
    out: PathBuf,
    preset: Option<&'static str>,
    report_only: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: alice <design.v> [--config flow.yaml] [--top NAME] \
         [--out DIR] [--cfg1 | --cfg2] [--report]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        design: PathBuf::new(),
        config: None,
        top: None,
        out: PathBuf::from("alice_out"),
        preset: None,
        report_only: false,
    };
    let mut it = std::env::args().skip(1);
    let mut positional = Vec::new();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => args.config = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--top" => args.top = Some(it.next().unwrap_or_else(|| usage())),
            "--out" => args.out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--cfg1" => args.preset = Some("cfg1"),
            "--cfg2" => args.preset = Some("cfg2"),
            "--report" => args.report_only = true,
            "--help" | "-h" => usage(),
            _ => positional.push(a),
        }
    }
    if positional.len() != 1 {
        usage();
    }
    args.design = PathBuf::from(&positional[0]);
    args
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let src = std::fs::read_to_string(&args.design)
        .map_err(|e| format!("cannot read {}: {e}", args.design.display()))?;
    let mut cfg = match args.preset {
        Some("cfg2") => AliceConfig::cfg2(),
        _ => AliceConfig::cfg1(),
    };
    if let Some(cpath) = &args.config {
        let ctext = std::fs::read_to_string(cpath)
            .map_err(|e| format!("cannot read {}: {e}", cpath.display()))?;
        cfg = AliceConfig::from_yaml(&ctext)?;
    }
    let name = args
        .design
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "design".to_string());
    let top = cfg.top.clone().or(args.top.clone());
    let design = Design::from_source(&name, &src, top.as_deref())?;
    eprintln!(
        "alice: {} ({} instances), config: {cfg}",
        design.name,
        design.instance_paths().len()
    );
    let outcome = Flow::new(cfg).run(&design)?;
    println!("{}", outcome.report);
    if args.report_only {
        return Ok(());
    }
    let Some(redacted) = &outcome.redacted else {
        eprintln!("alice: no feasible solution under this configuration");
        return Ok(());
    };
    std::fs::create_dir_all(&args.out)?;
    let top_path = args.out.join("top_asic.v");
    std::fs::write(&top_path, redacted.top_asic_verilog())?;
    let fabric_path = args.out.join("fabrics.v");
    std::fs::write(&fabric_path, &redacted.fabric_verilog)?;
    for (i, e) in redacted.efpgas.iter().enumerate() {
        let bits: String = e
            .config_stream
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        std::fs::write(args.out.join(format!("bitstream_e{i}.txt")), bits)?;
        eprintln!(
            "alice: eFPGA {i}: {} at `{}` redacting {:?} ({} config bits)",
            e.size,
            e.insertion_point,
            e.instances,
            e.config_stream.len()
        );
    }
    eprintln!(
        "alice: wrote {}, {} and {} bitstream file(s) — keep the bitstreams secret",
        top_path.display(),
        fabric_path.display(),
        redacted.efpgas.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("alice: error: {e}");
            ExitCode::FAILURE
        }
    }
}
