//! `alice` — the command-line front end of the flow, mirroring Figure 3:
//! Verilog + YAML config in, redacted top + fabric netlists + bitstreams
//! out.
//!
//! ```text
//! alice <design.v> [--config flow.yaml] [--top NAME] [--out DIR]
//!       [--cfg1 | --cfg2] [--jobs N] [--report]
//!       [--verify] [--wrong-keys N] [--no-cache]
//! ```

use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::design::Design;
use alice_redaction::core::flow::Flow;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: alice <design.v> [--config flow.yaml] [--top NAME] \
                     [--out DIR] [--cfg1 | --cfg2] [--jobs N] [--report] \
                     [--verify] [--wrong-keys N] [--no-cache]";

#[derive(Debug)]
struct Args {
    design: PathBuf,
    config: Option<PathBuf>,
    top: Option<String>,
    out: PathBuf,
    preset: Option<&'static str>,
    jobs: Option<usize>,
    report_only: bool,
    verify: bool,
    wrong_keys: Option<usize>,
    no_cache: bool,
}

/// Parses a numeric flag value, rejecting out-of-range values with an
/// error that names the flag (`min` is the smallest accepted value).
fn parse_count(flag: &str, v: &str, min: usize) -> Result<usize, String> {
    let n: usize = v
        .parse()
        .map_err(|_| format!("invalid value for `{flag}`: `{v}`"))?;
    if n < min {
        return Err(format!(
            "invalid value for `{flag}`: `{v}` (must be at least {min})"
        ));
    }
    Ok(n)
}

/// Parses the command line; every error names the offending flag.
/// `Ok(None)` means `--help` was requested (print usage, exit 0).
fn parse_args(argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut args = Args {
        design: PathBuf::new(),
        config: None,
        top: None,
        out: PathBuf::from("alice_out"),
        preset: None,
        jobs: None,
        report_only: false,
        verify: false,
        wrong_keys: None,
        no_cache: false,
    };
    let mut it = argv;
    let mut positional = Vec::new();
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| -> Result<String, String> {
        it.next()
            .ok_or_else(|| format!("missing value for `{flag}`"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => args.config = Some(PathBuf::from(value(&mut it, "--config")?)),
            "--top" => args.top = Some(value(&mut it, "--top")?),
            "--out" => args.out = PathBuf::from(value(&mut it, "--out")?),
            "--jobs" => {
                // 0 ("auto") is spelled by omitting the flag, not `--jobs 0`.
                let v = value(&mut it, "--jobs")?;
                args.jobs = Some(parse_count("--jobs", &v, 1)?);
            }
            "--wrong-keys" => {
                let v = value(&mut it, "--wrong-keys")?;
                args.wrong_keys = Some(parse_count("--wrong-keys", &v, 1)?);
                args.verify = true; // the sweep implies verification
            }
            "--verify" => args.verify = true,
            "--no-cache" => args.no_cache = true,
            "--cfg1" => args.preset = Some("cfg1"),
            "--cfg2" => args.preset = Some("cfg2"),
            "--report" => args.report_only = true,
            "--help" | "-h" => return Ok(None),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            _ => positional.push(a),
        }
    }
    match positional.len() {
        0 => return Err("missing <design.v> argument".to_string()),
        1 => args.design = PathBuf::from(&positional[0]),
        _ => {
            return Err(format!(
                "expected one design file, got {}: {}",
                positional.len(),
                positional.join(", ")
            ))
        }
    }
    Ok(Some(args))
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(&args.design)
        .map_err(|e| format!("cannot read {}: {e}", args.design.display()))?;
    let mut cfg = match args.preset {
        Some("cfg2") => AliceConfig::cfg2(),
        _ => AliceConfig::cfg1(),
    };
    if let Some(cpath) = &args.config {
        let ctext = std::fs::read_to_string(cpath)
            .map_err(|e| format!("cannot read {}: {e}", cpath.display()))?;
        cfg = AliceConfig::from_yaml(&ctext)?;
    }
    if let Some(jobs) = args.jobs {
        cfg.jobs = jobs;
    }
    if args.verify {
        cfg.verify = true;
    }
    if let Some(n) = args.wrong_keys {
        cfg.verify_wrong_keys = n;
    }
    if args.no_cache {
        // A/B baseline: run every characterization from scratch.
        cfg.cache = false;
    }
    let name = args
        .design
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "design".to_string());
    // The command line wins over the config file for the top module.
    let top = args.top.clone().or(cfg.top.clone());
    let design = Design::from_source(&name, &src, top.as_deref())?;
    eprintln!(
        "alice: {} ({} instances), config: {cfg}, {} characterization job(s)",
        design.name,
        design.instance_paths().len(),
        cfg.effective_jobs()
    );
    let outcome = Flow::new(cfg).run(&design)?;
    println!("{}", outcome.report);
    eprintln!(
        "alice: characterization cache: {} hit(s), {} miss(es)",
        outcome.report.cache_hits, outcome.report.cache_misses
    );
    if let Some(v) = &outcome.verify {
        eprintln!(
            "alice: verify: {} ({} points, {} vars, {} clauses)",
            v.outcome, v.diff_points, v.cnf_vars, v.cnf_clauses
        );
        for wk in &v.wrong_keys {
            eprintln!(
                "alice: wrong key (flipping {} bit(s)): {}/{} outputs corrupted{}",
                wk.flipped.len(),
                wk.corrupted,
                wk.total,
                if wk.complete { "" } else { " (budget hit)" }
            );
        }
        if !v.outcome.is_equivalent() {
            return Err(format!("verification did not prove equivalence: {}", v.outcome).into());
        }
    }
    if args.report_only {
        return Ok(());
    }
    let Some(redacted) = &outcome.redacted else {
        eprintln!("alice: no feasible solution under this configuration");
        return Ok(());
    };
    std::fs::create_dir_all(&args.out)?;
    let top_path = args.out.join("top_asic.v");
    std::fs::write(&top_path, redacted.top_asic_verilog())?;
    let fabric_path = args.out.join("fabrics.v");
    std::fs::write(&fabric_path, &redacted.fabric_verilog)?;
    for (i, e) in redacted.efpgas.iter().enumerate() {
        let bits: String = e
            .config_stream
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        std::fs::write(args.out.join(format!("bitstream_e{i}.txt")), bits)?;
        eprintln!(
            "alice: eFPGA {i}: {} at `{}` redacting {:?} ({} config bits)",
            e.size,
            e.insertion_point,
            e.instances,
            e.config_stream.len()
        );
    }
    eprintln!(
        "alice: wrote {}, {} and {} bitstream file(s) — keep the bitstreams secret",
        top_path.display(),
        fabric_path.display(),
        redacted.efpgas.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("alice: error: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("alice: error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<Args>, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn jobs_zero_is_rejected_with_the_flag_named() {
        let err = parse(&["d.v", "--jobs", "0"]).expect_err("must reject");
        assert!(err.contains("--jobs"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&["d.v", "--jobs", "many"]).expect_err("must reject");
        assert!(err.contains("--jobs"), "{err}");
    }

    #[test]
    fn wrong_keys_zero_is_rejected_with_the_flag_named() {
        let err = parse(&["d.v", "--wrong-keys", "0"]).expect_err("must reject");
        assert!(err.contains("--wrong-keys"), "{err}");
    }

    #[test]
    fn verify_flags_parse() {
        let a = parse(&["d.v", "--verify"]).expect("ok").expect("args");
        assert!(a.verify);
        assert_eq!(a.wrong_keys, None);
        let a = parse(&["d.v", "--wrong-keys", "5"])
            .expect("ok")
            .expect("args");
        assert!(a.verify, "--wrong-keys implies --verify");
        assert_eq!(a.wrong_keys, Some(5));
    }

    #[test]
    fn valid_jobs_still_parse() {
        let a = parse(&["d.v", "--jobs", "3"]).expect("ok").expect("args");
        assert_eq!(a.jobs, Some(3));
    }

    #[test]
    fn no_cache_parses() {
        let a = parse(&["d.v", "--no-cache"]).expect("ok").expect("args");
        assert!(a.no_cache);
        let a = parse(&["d.v"]).expect("ok").expect("args");
        assert!(!a.no_cache, "cache is on by default");
    }

    #[test]
    fn missing_values_and_unknown_flags_name_the_flag() {
        let err = parse(&["d.v", "--wrong-keys"]).expect_err("must reject");
        assert!(err.contains("--wrong-keys"), "{err}");
        let err = parse(&["d.v", "--frobnicate"]).expect_err("must reject");
        assert!(err.contains("--frobnicate"), "{err}");
    }
}
