//! Golden end-to-end tests: the full flow on GCD and on a generated
//! benchmark with a fixed seed, with the FlowReport snapshot pinned and
//! redacted+correct-bitstream equivalence established by the CEC verify
//! stage — not just simulation.

use alice_redaction::benchmarks;
use alice_redaction::benchmarks::generator::{generate, GeneratorParams};
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::design::Design;
use alice_redaction::core::flow::Flow;
use alice_redaction::core::stage::{CLUSTER, FILTER, REDACT, SELECT, VERIFY};
use alice_redaction::core::verify::VerifyOutcome;

#[test]
fn gcd_golden_flow_with_cec_proof() {
    let b = benchmarks::gcd::benchmark();
    let d = b.design().expect("load");
    let cfg = AliceConfig {
        verify: true,
        verify_wrong_keys: 2,
        ..b.config(AliceConfig::cfg1())
    };
    let out = Flow::new(cfg).run(&d).expect("flow");

    // --- FlowReport snapshot (stable: the flow is deterministic). ---
    let r = &out.report;
    assert_eq!(r.design, "GCD");
    assert_eq!(r.instances, 11);
    assert_eq!(r.candidates, 9);
    assert_eq!(r.clusters, 35);
    assert_eq!(r.solutions, 334);
    assert_eq!(r.efpga_sizes.len(), 2, "two eFPGAs under cfg1");
    assert_eq!(r.redacted_modules, 4);
    assert_eq!(r.verified, Some(true));

    // --- Timings: all five stages recorded, report mirrors them. ---
    let names: Vec<&str> = out.timings.records.iter().map(|t| t.name).collect();
    assert_eq!(names, vec![FILTER, CLUSTER, SELECT, REDACT, VERIFY]);
    assert_eq!(r.verify_time, out.timings.duration_of(VERIFY));
    assert!(r.verify_time > std::time::Duration::ZERO);

    // --- The CEC proof, not simulation, is the equivalence oracle. ---
    let v = out.verify.as_ref().expect("verify ran");
    assert_eq!(v.outcome, VerifyOutcome::Equivalent, "{}", v.outcome);
    assert!(v.diff_points >= 72, "output bits + next-states compared");
    assert!(v.cnf_clauses > 0);

    // --- Wrong keys provably corrupt GCD outputs. ---
    let corr = v.corruption_fraction().expect("sweep ran");
    assert!(corr > 0.0, "wrong bitstreams must corrupt GCD");
    assert_eq!(v.wrong_keys.len(), 2);
    for wk in &v.wrong_keys {
        assert!(wk.complete, "corruption analysis must be exact on GCD");
    }
}

#[test]
fn generated_benchmark_golden_flow_with_cec_proof() {
    let src = generate(11, GeneratorParams::default());
    let d = Design::from_source("synth", &src, None).expect("load");
    let cfg = AliceConfig {
        verify: true,
        ..AliceConfig::cfg1()
    };
    let out = Flow::new(cfg).run(&d).expect("flow");

    // Snapshot for seed 11 (deterministic generator + flow).
    let r = &out.report;
    assert!(r.candidates > 0, "seed 11 has redactable modules");
    assert!(out.redacted.is_some(), "seed 11 redacts");
    assert_eq!(r.verified, Some(true));
    let v = out.verify.as_ref().expect("verify ran");
    assert_eq!(v.outcome, VerifyOutcome::Equivalent, "{}", v.outcome);
    assert!(v.diff_points > 0);

    // Same seed, same flow: the report is reproducible run-to-run.
    let out2 = Flow::new(AliceConfig {
        verify: true,
        ..AliceConfig::cfg1()
    })
    .run(&d)
    .expect("flow");
    assert_eq!(out2.report.candidates, r.candidates);
    assert_eq!(out2.report.clusters, r.clusters);
    assert_eq!(out2.report.solutions, r.solutions);
    assert_eq!(out2.report.efpga_sizes, r.efpga_sizes);
    assert_eq!(out2.report.verified, Some(true));
}
