//! Suite-wide CEC acceptance: `prove_equivalent(original, redacted +
//! correct bitstream)` for every DAC'22 benchmark, plus the wrong-key
//! corruptibility floor for DES3 and GCD.
//!
//! SAT-heavy (IIR's redacted multipliers alone take ~2 minutes of
//! sweeping): ignored in debug builds, run by CI's release matrix entry.

use alice_redaction::benchmarks;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::flow::{Flow, FlowOutcome};
use alice_redaction::core::verify::VerifyOutcome;

fn verified_run(b: &benchmarks::Benchmark, wrong_keys: usize) -> FlowOutcome {
    let d = b.design().expect("load");
    let mk = |base: AliceConfig| AliceConfig {
        verify: true,
        verify_wrong_keys: wrong_keys,
        ..b.config(base)
    };
    // cfg1 where feasible, cfg2 otherwise (IIR has no cfg1 solution).
    let out = Flow::new(mk(AliceConfig::cfg1())).run(&d).expect("flow");
    if out.redacted.is_some() {
        out
    } else {
        Flow::new(mk(AliceConfig::cfg2())).run(&d).expect("flow")
    }
}

#[cfg_attr(debug_assertions, ignore = "SAT-heavy; run with --release")]
#[test]
fn every_benchmark_redaction_is_proven_equivalent() {
    for b in benchmarks::suite() {
        let out = verified_run(&b, 0);
        let v = out.verify.as_ref().expect("verify stage ran");
        match &v.outcome {
            VerifyOutcome::Equivalent => {
                assert!(v.diff_points > 0, "{}: nothing compared", b.name);
            }
            other => panic!("{}: redaction not proven equivalent: {other}", b.name),
        }
    }
}

#[cfg_attr(debug_assertions, ignore = "SAT-heavy; run with --release")]
#[test]
fn wrong_keys_provably_corrupt_des3_and_gcd() {
    for (bench, floor) in [
        (benchmarks::des3::benchmark(), 0.0),
        (benchmarks::gcd::benchmark(), 0.0),
    ] {
        let out = verified_run(&bench, 3);
        let v = out.verify.as_ref().expect("verify stage ran");
        assert_eq!(v.outcome, VerifyOutcome::Equivalent, "{}", bench.name);
        let corr = v.corruption_fraction().expect("sweep ran");
        assert!(
            corr > floor,
            "{}: wrong-key corruption fraction {corr} must be nonzero",
            bench.name
        );
    }
}
