//! Multi-level punch-through golden: cluster members that live two
//! levels down in *different* intermediate modules force the redaction
//! rewriter through its whole §6 repertoire at once — both intermediates
//! are uniquified, member ports are punched up through them to the
//! common dominator (the top), and the fabric lands there. The emitted
//! bytes are pinned (FNV-1a 64), and the configured redaction is
//! simulated against the original.

use alice_redaction::core::config::{AliceConfig, ScoreModel};
use alice_redaction::core::design::Design;
use alice_redaction::core::flow::Flow;
use alice_redaction::netlist::elaborate;
use alice_redaction::netlist::sim::Simulator;
use alice_redaction::verilog::{parse_source, Bits};

/// The mids carry a wide passthrough bus so they fail the structural
/// filter (64 > max_io_pins) while their leaves pass — the selected
/// cluster can only be the two leaves, whose lowest common dominator is
/// the top, two levels above them.
const SRC: &str = "
module leaf_x(input wire [3:0] a, input wire [3:0] b, output wire [3:0] y);
  assign y = a ^ b;
endmodule
module leaf_q(input wire clk, input wire [3:0] d, output reg [3:0] q);
  always @(posedge clk) q <= d + 4'd1;
endmodule
module mid_a(input wire [3:0] p, input wire [3:0] q, output wire [3:0] r,
             input wire [63:0] w, output wire [63:0] wo);
  leaf_x u_x(.a(p), .b(q), .y(r));
  assign wo = ~w;
endmodule
module mid_b(input wire clk, input wire [3:0] p, output wire [3:0] r,
             input wire [63:0] w, output wire [63:0] wo);
  leaf_q u_q(.clk(clk), .d(p), .q(r));
  assign wo = {w[31:0], w[63:32]};
endmodule
module top(input wire clk, input wire [3:0] i1, input wire [3:0] i2,
           input wire [63:0] wide, output wire [3:0] o1, output wire [3:0] o2,
           output wire [63:0] wide_o);
  wire [63:0] mid;
  mid_a u_ma(.p(i1), .q(i2), .r(o1), .w(wide), .wo(mid));
  mid_b u_mb(.clk(clk), .p(i2), .r(o2), .w(mid), .wo(wide_o));
endmodule";

/// FNV-1a 64 over emitted text (the same fingerprint as
/// `tests/golden_verilog.rs`).
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn redact() -> (Design, alice_redaction::core::flow::FlowOutcome) {
    let d = Design::from_source("multi", SRC, None).expect("load");
    let cfg = AliceConfig {
        max_io_pins: 24,
        max_efpgas: 1,
        // As-printed Eq. 1 rewards low utilization, which picks the
        // two-member cluster over either single — exactly the shape that
        // forces punch-through on both intermediate modules.
        score_model: ScoreModel::AsPrinted,
        ..AliceConfig::default()
    };
    let out = Flow::new(cfg).run(&d).expect("flow");
    (d, out)
}

#[test]
fn leaves_under_different_mids_redact_through_both() {
    let (d, out) = redact();
    // Only the two leaves survive the structural filter.
    let cand: Vec<&str> = out
        .filter
        .candidates
        .iter()
        .map(|c| c.path.as_str())
        .collect();
    assert_eq!(cand, vec!["top.u_ma.u_x", "top.u_mb.u_q"]);
    let rd = out.redacted.as_ref().expect("redacts");
    assert_eq!(rd.efpgas.len(), 1);
    let e = &rd.efpgas[0];
    assert_eq!(e.instances.len(), 2, "the pair cluster wins");
    assert_eq!(
        e.insertion_point, "top",
        "dominator of members in different subtrees is the top"
    );
    // The recorded insertion point is exactly the tree's LCA answer.
    assert_eq!(d.paths.common_parent(&e.instances), Some(e.insertion_point));

    // Both intermediates were uniquified and re-pointed; the originals'
    // leaf instances are gone from the rewritten modules.
    let parsed = parse_source(&rd.combined_verilog()).expect("parses");
    let top = parsed.module("top").expect("top");
    let mid_mods: Vec<&str> = top
        .instances()
        .filter(|i| i.name == "u_ma" || i.name == "u_mb")
        .map(|i| i.module.as_str())
        .collect();
    assert_eq!(mid_mods.len(), 2);
    for m in &mid_mods {
        assert!(m.contains("_rdt"), "intermediate must be uniquified: {m}");
        let def = parsed.module(m).expect("uniquified module exists");
        assert!(
            !def.instances().any(|i| i.module.starts_with("leaf_")),
            "member instance must be removed from {m}"
        );
        // The punched member ports surface on the rewritten intermediate.
        assert!(
            def.ports
                .iter()
                .any(|p| p.name.contains("u_x") || p.name.contains("u_q")),
            "{m} must expose punched member ports"
        );
    }
    // The untouched originals are still present for unrelated instances.
    assert!(parsed.module("mid_a").is_some());
    assert!(parsed.module("mid_b").is_some());
}

#[test]
fn multilevel_redaction_emits_pinned_bytes() {
    // Golden byte-identity for the multi-level punch-through shape; a
    // refactor of the rewriter must keep these exact bytes (same bar as
    // tests/golden_verilog.rs, on a deeper hierarchy).
    let (_, out) = redact();
    let rd = out.redacted.as_ref().expect("redacts");
    assert_eq!(
        fnv(&rd.top_asic_verilog()),
        0x4babf0d6a6777689,
        "top ASIC Verilog drifted from the pinned golden bytes"
    );
    assert_eq!(
        fnv(&rd.fabric_verilog),
        0x7f21e910c83de7f4,
        "fabric Verilog drifted from the pinned golden bytes"
    );
}

#[test]
fn configured_multilevel_redaction_matches_original() {
    let (d, out) = redact();
    let rd = out.redacted.as_ref().expect("redacts");
    let e = &rd.efpgas[0];
    let parsed = parse_source(&rd.combined_verilog()).expect("parse");
    let chip = elaborate(&parsed, "top").expect("elaborate redacted");
    let original = elaborate(&d.file, "top").expect("elaborate original");

    let mut sim = Simulator::new(&chip);
    sim.set_input("cfg_en", &Bits::from_u64(1, 1));
    for &bit in &e.config_stream {
        sim.set_input("cfg_in_e0", &Bits::from_u64(bit as u64, 1));
        sim.step();
    }
    sim.set_input("cfg_en", &Bits::from_u64(0, 1));
    let mut oref = Simulator::new(&original);
    for (i1, i2, wide) in [
        (0u64, 0u64, 0u64),
        (5, 9, 0xdead_beef_1234_5678),
        (15, 15, u64::MAX),
        (3, 12, 0x0f0f_f0f0_5555_aaaa),
    ] {
        for s in [&mut sim, &mut oref] {
            s.set_input("i1", &Bits::from_u64(i1, 4));
            s.set_input("i2", &Bits::from_u64(i2, 4));
            s.set_input("wide", &Bits::from_u64(wide, 64));
            s.step(); // clock the redacted register chain once
            s.settle();
        }
        assert_eq!(sim.output("o1"), oref.output("o1"), "i1={i1} i2={i2}");
        assert_eq!(sim.output("o2"), oref.output("o2"), "i1={i1} i2={i2}");
        assert_eq!(
            sim.output("wide_o"),
            oref.output("wide_o"),
            "wide={wide:#x}"
        );
    }
}
