//! Determinism guard for portfolio solving: racing diversified solver
//! configurations may change wall-clock and witnesses, but never
//! *answers*. On GCD and DES3, a `portfolio = 3` run must produce the
//! same equivalence verdict as the classic `portfolio = 1` path, and the
//! SAT attack must recover the same canonical key bit-for-bit
//! (counterexamples and DIP sequences may differ; verdicts and key bits
//! may not).
//!
//! SAT-heavy: ignored in debug builds, run by CI's release matrix entry.

use alice_redaction::attacks::{sat_attack, sat_attack_portfolio, AttackBudget, AttackStatus};
use alice_redaction::benchmarks;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::flow::{Flow, FlowOutcome};
use alice_redaction::core::select::ClusterMapper;
use alice_redaction::core::verify::VerifyOutcome;
use std::sync::Arc;

fn verified_run(b: &benchmarks::Benchmark, portfolio: usize) -> FlowOutcome {
    let d = b.design().expect("load");
    let cfg = AliceConfig {
        verify: true,
        portfolio,
        // Real racing threads even on small machines, so the guard
        // exercises concurrent cancellation, not the inline path.
        jobs: portfolio.max(1),
        ..b.config(AliceConfig::cfg1())
    };
    Flow::new(cfg).run(&d).expect("flow")
}

#[cfg_attr(debug_assertions, ignore = "SAT-heavy; run with --release")]
#[test]
fn portfolio_verdicts_match_the_classic_path() {
    for b in [benchmarks::gcd::benchmark(), benchmarks::des3::benchmark()] {
        let classic = verified_run(&b, 1);
        let raced = verified_run(&b, 3);
        let vc = classic.verify.as_ref().expect("verify ran");
        let vr = raced.verify.as_ref().expect("verify ran");
        assert_eq!(
            vc.outcome,
            VerifyOutcome::Equivalent,
            "{}: classic verdict",
            b.name
        );
        assert_eq!(
            vr.outcome, vc.outcome,
            "{}: portfolio changed the verdict",
            b.name
        );
        assert!(vc.portfolio.is_none(), "{}: classic run raced", b.name);
        let summary = vr
            .portfolio
            .as_ref()
            .expect("portfolio summary on a raced proof");
        assert_eq!(summary.configs, 3, "{}", b.name);
        assert!(summary.winner < 3, "{}", b.name);
    }
}

#[cfg_attr(debug_assertions, ignore = "SAT-heavy; run with --release")]
#[test]
fn portfolio_attack_recovers_identical_keys() {
    // Key recovery requires the attack to RUN TO TERMINATION (the DIP
    // miter goes UNSAT), and termination is bounded by the fabric's
    // INPUT space, not its LUT count — so the bit-for-bit key
    // comparison races full-budget attacks on small-input cluster
    // fabrics (≤ 2^INPUT_CAP possible DIPs), while the budget-truncated
    // Resilient regime is pinned separately on each design's largest
    // budget-class fabric.
    const INPUT_CAP: usize = 10;
    const LUT_CAP: usize = 220;
    let truncated = AttackBudget {
        max_dips: 12,
        conflicts_per_call: 8_000,
    };
    let inputs_of =
        |n: &alice_redaction::netlist::lutmap::MappedNetlist| n.input_names.len() + n.dffs.len();
    let mut compared = 0;
    for b in [benchmarks::gcd::benchmark(), benchmarks::des3::benchmark()] {
        let d = b.design().expect("load");
        // cfg1 where it redacts, cfg2 otherwise — same probe as cec_bench.
        let probe = Flow::new(b.config(AliceConfig::cfg1()))
            .run(&d)
            .expect("flow");
        let out = if probe.redacted.is_some() {
            probe
        } else {
            Flow::new(b.config(AliceConfig::cfg2()))
                .run(&d)
                .expect("flow")
        };
        let db = Arc::new(alice_redaction::core::db::DesignDb::new());
        let mut mapper = ClusterMapper::new(&d, 4, &db);
        let mut networks: Vec<_> = out
            .selection
            .valid
            .iter()
            .filter_map(|chosen| {
                mapper
                    .cluster_network(&chosen.cluster, &out.filter.candidates)
                    .ok()
            })
            .collect();
        networks.sort_by_key(|n| (inputs_of(n), n.lut_count()));

        // Regime 1: full-budget key recovery on up to two small-input
        // fabrics — both paths must terminate with identical keys.
        for network in networks
            .iter()
            .filter(|n| inputs_of(n) <= INPUT_CAP)
            .take(2)
        {
            let classic = sat_attack(network, AttackBudget::default());
            let raced = sat_attack_portfolio(network, AttackBudget::default(), 3);
            match (&classic.status, &raced.status) {
                (
                    AttackStatus::KeyRecovered { keys: kc },
                    AttackStatus::KeyRecovered { keys: kr },
                ) => {
                    assert_eq!(kc, kr, "{}: canonical keys must match bit-for-bit", b.name);
                    compared += 1;
                }
                (c, r) => panic!(
                    "{}: a {}-input fabric must terminate on both paths, got {c:?} / {r:?}",
                    b.name,
                    inputs_of(network)
                ),
            }
            assert!(classic.portfolio.is_none(), "{}", b.name);
            let stats = raced.portfolio.as_ref().expect("raced attack has stats");
            assert_eq!(stats.configs, 3, "{}", b.name);
        }

        // Regime 2: the budget-truncated verdict on the largest
        // budget-class fabric must agree between the paths.
        if let Some(network) = networks
            .iter()
            .filter(|n| n.lut_count() <= LUT_CAP)
            .max_by_key(|n| n.lut_count())
        {
            let classic = sat_attack(network, truncated);
            let raced = sat_attack_portfolio(network, truncated, 3);
            assert_eq!(
                classic.status == AttackStatus::Resilient,
                raced.status == AttackStatus::Resilient,
                "{}: portfolio changed the truncated attack outcome",
                b.name
            );
        }
    }
    // At least one fabric across the two designs must actually recover
    // a key, or the bit-for-bit comparison above never fired.
    assert!(
        compared > 0,
        "no small-input fabric recovered a key — guard is vacuous"
    );
}
