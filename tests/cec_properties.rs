//! Property tests for the `alice-cec` equivalence checker: random small
//! netlists must prove equivalent to themselves, and mutated copies must
//! yield counterexamples that the `alice-netlist` simulator confirms
//! end-to-end (the SAT layer and the simulation layer cross-validate).

use alice_redaction::cec::{prove_equivalent, CecResult};
use alice_redaction::netlist::ir::{Lit, Netlist};
use alice_redaction::netlist::sim::eval_comb;
use alice_redaction::verilog::Bits;
use proptest::prelude::*;

/// Builds a random combinational netlist: `inputs` single-bit ports and a
/// random AND/XOR/MUX DAG over them, with 2 output ports.
fn random_netlist(seed: u64, inputs: u32, gates: u32) -> Netlist {
    let mut rng = proptest::TestRng::deterministic(&format!("net-{seed}"));
    let mut n = Netlist::new("rand");
    let mut pool: Vec<Lit> = (0..inputs)
        .flat_map(|i| n.add_input(&format!("i{i}"), 1))
        .collect();
    for _ in 0..gates {
        let pick = |rng: &mut proptest::TestRng, pool: &[Lit]| -> Lit {
            let l = pool[(rng.next_u64() % pool.len() as u64) as usize];
            if rng.next_u64() & 1 == 1 {
                l.compl()
            } else {
                l
            }
        };
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let g = match rng.next_u64() % 3 {
            0 => n.and(a, b),
            1 => n.xor(a, b),
            _ => {
                let c = pick(&mut rng, &pool);
                n.mux(a, b, c)
            }
        };
        pool.push(g);
    }
    let y0 = pool[pool.len() - 1];
    let y1 = pool[pool.len() / 2];
    n.add_output("y0", vec![y0]);
    n.add_output("y1", vec![y1]);
    n
}

/// Simulated output vector: `(port, value)` pairs from `eval_comb`.
type SimOutputs = Vec<(String, Bits)>;

/// Applies a counterexample's inputs to both netlists and returns the
/// two output vectors (the simulator as the independent referee).
fn replay(
    cex_inputs: &[(alice_intern::Symbol, Vec<bool>)],
    a: &Netlist,
    b: &Netlist,
) -> (SimOutputs, SimOutputs) {
    let assigns: Vec<(&str, Bits)> = cex_inputs
        .iter()
        .map(|(name, bits)| (name.as_str(), Bits::from_bits(bits)))
        .collect();
    (eval_comb(a, &assigns), eval_comb(b, &assigns))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Reflexivity: every netlist is equivalent to itself.
    #[test]
    fn self_equivalence_always_holds(seed in 0u64..100_000) {
        let n = random_netlist(seed, 2 + (seed % 5) as u32, 5 + (seed % 36) as u32);
        prop_assert_eq!(prove_equivalent(&n, &n), Ok(CecResult::Equivalent));
    }

    /// A copy with one output polarity flipped is never equivalent, and
    /// the counterexample replays on the simulator with differing
    /// outputs.
    #[test]
    fn flipped_output_yields_a_sim_confirmed_counterexample(seed in 0u64..100_000) {
        let n = random_netlist(seed, 3 + (seed % 4) as u32, 8 + (seed % 24) as u32);
        let mut bad = n.clone();
        bad.outputs[0].1[0] = bad.outputs[0].1[0].compl();
        match prove_equivalent(&n, &bad).expect("boundary pairs") {
            CecResult::NotEquivalent(cex) => {
                prop_assert!(cex.diffs.contains(&"y0[0]".to_string()));
                let (oa, ob) = replay(&cex.inputs, &n, &bad);
                prop_assert!(oa != ob, "simulator must confirm the counterexample");
                prop_assert!(oa[0].1 != ob[0].1, "y0 must differ under the witness");
            }
            other => prop_assert!(false, "expected counterexample, got {:?}", other),
        }
    }

    /// A copy with one random gate rewired: if the checker reports a
    /// counterexample the simulator confirms it; if it proves equivalence
    /// exhaustive simulation over all input patterns agrees (the mutation
    /// can land outside the output cones).
    #[test]
    fn gate_mutations_are_caught_or_provably_harmless(seed in 0u64..100_000) {
        let inputs = 3 + (seed % 4) as u32; // ≤ 6 inputs: exhaustible
        let n = random_netlist(seed, inputs, 8 + (seed % 24) as u32);
        // Rebuild with one gate's fanin complemented.
        let mut rng = proptest::TestRng::deterministic(&format!("mut-{seed}"));
        let gate_ids: Vec<_> = n.gates().map(|(id, _)| id).collect();
        prop_assert!(!gate_ids.is_empty());
        let victim = gate_ids[(rng.next_u64() % gate_ids.len() as u64) as usize];
        let mut bad = Netlist::new("mutant");
        let mut map: Vec<Lit> = Vec::with_capacity(n.len());
        map.push(Lit::FALSE); // constant node
        for (id, node) in n.iter().skip(1) {
            use alice_redaction::netlist::ir::Node;
            let remap = |l: Lit, map: &[Lit]| -> Lit {
                let base = map[l.node().0 as usize];
                if l.is_compl() { base.compl() } else { base }
            };
            let lit = match node {
                Node::Const0 => Lit::FALSE,
                Node::Input { name } => Lit::new(bad.add_input_bit(*name), false),
                Node::And(a, b) => {
                    let (mut a, b) = (remap(*a, &map), remap(*b, &map));
                    if id == victim {
                        a = a.compl();
                    }
                    bad.and(a, b)
                }
                Node::Xor(a, b) => {
                    let (a, mut b) = (remap(*a, &map), remap(*b, &map));
                    if id == victim {
                        b = b.compl();
                    }
                    bad.xor(a, b)
                }
                Node::Mux { s, t, e } => {
                    let (mut s, t, e) = (remap(*s, &map), remap(*t, &map), remap(*e, &map));
                    if id == victim {
                        s = s.compl();
                    }
                    bad.mux(s, t, e)
                }
                Node::Dff { .. } | Node::Buf(_) => unreachable!("combinational netlist"),
            };
            map.push(lit);
        }
        // Mirror port structure.
        for (name, bits) in &n.inputs {
            let mapped: Vec<_> = bits.iter().map(|&b| map[b.0 as usize].node()).collect();
            bad.inputs.push((*name, mapped));
        }
        for (name, bits) in &n.outputs {
            let mapped = bits
                .iter()
                .map(|&l| {
                    let base = map[l.node().0 as usize];
                    if l.is_compl() { base.compl() } else { base }
                })
                .collect();
            bad.add_output(*name, mapped);
        }

        match prove_equivalent(&n, &bad).expect("boundary pairs") {
            CecResult::NotEquivalent(cex) => {
                let (oa, ob) = replay(&cex.inputs, &n, &bad);
                prop_assert!(oa != ob, "simulator must confirm the counterexample");
            }
            CecResult::Equivalent => {
                // The flip missed the output cones (or was folded away):
                // exhaustive simulation must agree on every pattern.
                let bits = n.inputs.len();
                for pattern in 0..(1u64 << bits) {
                    let assigns: Vec<(&str, Bits)> = n
                        .inputs
                        .iter()
                        .enumerate()
                        .map(|(i, (name, _))| {
                            (name.as_str(), Bits::from_u64((pattern >> i) & 1, 1))
                        })
                        .collect();
                    prop_assert_eq!(eval_comb(&n, &assigns), eval_comb(&bad, &assigns));
                }
            }
            CecResult::ResourceLimit => prop_assert!(false, "tiny netlists never hit the budget"),
        }
    }
}
