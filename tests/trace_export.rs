//! Trace-exporter coverage (the observability layer end to end): a real
//! flow run under an enabled trace sink must export Chrome trace-event
//! JSON that parses, is well-nested per thread, and names every pipeline
//! stage — and the same run with the sink left dark must allocate zero
//! trace events.
//!
//! One `#[test]` drives both legs sequentially: the trace buffer and
//! the enable flags are process-global, so independent tests would race.

use alice_redaction::benchmarks::gcd;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::flow::Flow;
use alice_redaction::core::stage::stage_span_name;
use alice_redaction::obs;

fn run_gcd(verify: bool) {
    let bench = gcd::benchmark();
    let design = bench.design().expect("load GCD");
    let mut config = bench.config(AliceConfig::cfg1());
    config.verify = verify;
    let outcome = Flow::new(config).run(&design).expect("GCD flow");
    assert!(outcome.redacted.is_some(), "GCD must redact");
}

#[test]
fn trace_exporter_end_to_end() {
    // Leg 1 — sink dark (the shipped default): a full flow run must not
    // allocate a single trace event.
    assert!(!obs::tracing_enabled(), "tracing must start disabled");
    run_gcd(false);
    assert_eq!(
        obs::trace_event_count(),
        0,
        "a disabled sink must record nothing"
    );

    // Leg 2 — sink lit: run with verification so the span tree reaches
    // through CEC down to per-pair SAT calls, then export and validate.
    obs::enable_tracing();
    run_gcd(true);
    assert!(obs::trace_event_count() > 0, "spans must be recorded");
    let trace = obs::take_trace();
    obs::disable_tracing();
    let json = trace.to_chrome_json();

    // The emitted JSON parses (with the crate's own parser — no serde),
    // and validates: every thread's spans are properly nested.
    let summary = obs::validate_chrome_trace(&json).expect("emitted trace must validate");
    assert!(summary.events > 0);
    assert!(summary.threads >= 1);
    assert!(summary.max_depth >= 2, "spans must nest, not just abut");

    // Every pipeline stage the flow ran appears under the span name
    // `stage_span_name` derives from `Stage::name`.
    for stage in ["filter", "cluster", "select", "redact", "verify"] {
        let span = stage_span_name(stage);
        assert!(
            summary.has_span(span),
            "stage `{stage}` missing from trace (expected span `{span}`); got {:?}",
            summary.span_names
        );
        assert_ne!(span, "stage.other", "`{stage}` must map to a real span");
    }
    // The verification leg must have reached the CEC layer.
    assert!(
        summary.has_span("cec.prove") || summary.has_span("cec.pair_proof"),
        "no SAT proof span in a --verify run; got {:?}",
        summary.span_names
    );

    // Draining left the buffer empty for whoever runs next.
    assert_eq!(obs::trace_event_count(), 0);
}
