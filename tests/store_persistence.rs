//! Flow-level tests of the persistent artifact store: the acceptance
//! bar for `--store` is that a *second process* over the same directory
//! (modelled here as a fresh `Flow` whose `DesignDb` reopens the store)
//! reports disk cache hits, recomputes no fabric characterizations, and
//! emits byte-identical Verilog — and that *any* damage to the store
//! files degrades to a recompute with identical output, never an error.

use alice_redaction::benchmarks;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::db::{CacheCounts, DesignDb};
use alice_redaction::core::design::Design;
use alice_redaction::core::flow::{Flow, FlowOutcome};
use alice_redaction::store::{Kind, FORMAT_VERSION, MAGIC, SHARD_COUNT};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Every shard segment file of every kind currently present in `dir`.
fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for kind in Kind::ALL {
        for shard in 0..SHARD_COUNT {
            let path = dir.join(kind.shard_file_name(shard));
            if path.exists() {
                out.push(path);
            }
        }
    }
    out
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "alice-flow-store-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn gcd_design() -> Design {
    benchmarks::gcd::benchmark().design().expect("load GCD")
}

/// Runs GCD cfg1 against a fresh store-backed db over `dir` (a new
/// process, as far as caching is concerned) and returns the outcome plus
/// the run's counter window.
fn run_store_backed(dir: &Path, design: &Design) -> (FlowOutcome, CacheCounts) {
    let cfg = AliceConfig {
        jobs: 1,
        store: Some(dir.to_path_buf()),
        ..AliceConfig::cfg1()
    };
    let flow = Flow::new(cfg);
    assert!(flow.db().store().is_some(), "store must attach");
    let before = flow.db().counts();
    let out = flow.run(design).expect("flow");
    let window = flow.db().counts().since(before);
    flow.db().flush_store().expect("flush");
    (out, window)
}

fn emitted(out: &FlowOutcome) -> (String, String) {
    let rd = out.redacted.as_ref().expect("redacts");
    (rd.top_asic_verilog(), rd.fabric_verilog.clone())
}

#[test]
fn second_process_is_warm_and_byte_identical() {
    let dir = store_dir("golden");
    let design = gcd_design();

    let (cold, cold_window) = run_store_backed(&dir, &design);
    assert_eq!(cold_window.disk_hits, 0, "first process has an empty store");
    assert!(cold_window.misses > 0, "first process computes");

    // A fresh flow + db over the same directory models the second CLI
    // process: >0 disk hits, zero fabric (or any) recomputations.
    let (warm, warm_window) = run_store_backed(&dir, &design);
    assert!(
        warm_window.disk_hits > 0,
        "second process must report disk cache hits"
    );
    assert_eq!(
        warm_window.misses, 0,
        "second process must recompute no characterizations"
    );
    assert_eq!(warm.report.cache_disk_hits, warm_window.disk_hits);
    assert_eq!(emitted(&warm), emitted(&cold), "byte-identical output");
    assert_eq!(
        warm.report.efpga_sizes, cold.report.efpga_sizes,
        "identical selection"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_store_still_yields_byte_identical_output() {
    let dir = store_dir("bitflip");
    let design = gcd_design();
    let (cold, _) = run_store_backed(&dir, &design);

    // Flip one bit somewhere in the middle of every shard segment file.
    let mut flipped_any = false;
    for path in shard_files(&dir) {
        if let Ok(mut bytes) = std::fs::read(&path) {
            if bytes.len() > 64 {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x20;
                std::fs::write(&path, &bytes).expect("rewrite");
                flipped_any = true;
            }
        }
    }
    assert!(flipped_any, "the store must have had content to damage");

    let (recovered, window) = run_store_backed(&dir, &design);
    assert!(
        window.misses > 0,
        "damaged records must be recomputed, not trusted"
    );
    assert_eq!(
        emitted(&recovered),
        emitted(&cold),
        "fallback recompute must reproduce the exact bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_bump_invalidates_the_whole_store() {
    let dir = store_dir("version");
    let design = gcd_design();
    let (cold, cold_window) = run_store_backed(&dir, &design);

    // Pretend every shard segment was written by a future format
    // version.
    for path in shard_files(&dir) {
        if let Ok(mut bytes) = std::fs::read(&path) {
            if bytes.len() >= 12 {
                bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
                std::fs::write(&path, &bytes).expect("rewrite");
            }
        }
    }

    let (recomputed, window) = run_store_backed(&dir, &design);
    assert_eq!(
        window.disk_hits, 0,
        "version-mismatched records must never be served"
    );
    assert_eq!(
        window.misses, cold_window.misses,
        "the run is exactly as cold as the first one"
    );
    assert_eq!(emitted(&recomputed), emitted(&cold));

    // The recompute rewrote the store at the current version: a third
    // process is warm again.
    let (_, rewarmed) = run_store_backed(&dir, &design);
    assert!(rewarmed.disk_hits > 0);
    assert_eq!(rewarmed.misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v2_store_migrates_in_place_and_second_process_is_warm() {
    let dir = store_dir("migrate");
    let design = gcd_design();
    let (cold, cold_window) = run_store_backed(&dir, &design);
    assert!(cold_window.misses > 0);

    // Rewind the on-disk layout to the v2 single-segment format:
    // concatenate every shard's record frames (they are verbatim v2
    // frames — the record format did not change) into one legacy file
    // per kind, then delete the shard files. This is byte-for-byte what
    // a PR 7 store left behind.
    let frames = |bytes: &[u8]| {
        let mut out: Vec<std::ops::Range<usize>> = Vec::new();
        let mut pos = 14; // v3 header: magic(8) + version(4) + kind + shard
        while bytes.len().saturating_sub(pos) >= 36 {
            let len = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().expect("4")) as usize;
            if bytes.len() - pos - 20 < len + 16 {
                break;
            }
            out.push(pos..pos + 20 + len + 16);
            pos += 20 + len + 16;
        }
        out
    };
    let mut rewound_any = false;
    for kind in Kind::ALL {
        let mut legacy: Option<Vec<u8>> = None;
        for shard in 0..SHARD_COUNT {
            let path = dir.join(kind.shard_file_name(shard));
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            let legacy = legacy.get_or_insert_with(|| {
                let mut head = Vec::new();
                head.extend_from_slice(&MAGIC);
                head.extend_from_slice(&2u32.to_le_bytes());
                head.push(bytes[12]); // the kind tag, from the v3 header
                head
            });
            for range in frames(&bytes) {
                legacy.extend_from_slice(&bytes[range]);
            }
            std::fs::remove_file(&path).expect("remove shard");
        }
        if let Some(legacy) = legacy {
            std::fs::write(dir.join(kind.file_name()), &legacy).expect("write legacy");
            rewound_any = true;
        }
    }
    assert!(rewound_any, "the store must have had content to rewind");

    // The second process opens the v2 store, migrates it in place, and
    // recomputes NOTHING: matrix-wide zero misses, byte-identical
    // output.
    let (migrated, window) = run_store_backed(&dir, &design);
    assert_eq!(window.misses, 0, "migration must not force recomputation");
    assert!(window.disk_hits > 0, "migrated records serve from disk");
    assert_eq!(emitted(&migrated), emitted(&cold), "byte-identical output");
    for kind in Kind::ALL {
        assert!(
            !dir.join(kind.file_name()).exists(),
            "legacy {} removed after migration",
            kind.file_name()
        );
    }
    assert!(!shard_files(&dir).is_empty(), "sharded layout in place");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_processes_both_contribute_records_on_flush() {
    let dir = store_dir("merge-two-writers");
    // Both handles open before either flushes — the scenario where a
    // last-writer-wins flush would silently drop the first writer's
    // records. The flush-time merge must keep both contributions.
    let db_a = Arc::new(DesignDb::with_store(&dir).expect("open a"));
    let db_b = Arc::new(DesignDb::with_store(&dir).expect("open b"));
    let cfg = AliceConfig {
        jobs: 1,
        ..AliceConfig::cfg1()
    };
    let gcd = gcd_design();
    const DEMO_SRC: &str = "
module blk_a(input wire [7:0] a, output wire [7:0] y); assign y = a + 8'd3; endmodule
module blk_b(input wire [7:0] a, output wire [7:0] y); assign y = a ^ 8'h55; endmodule
module top(input wire [7:0] x, output wire [7:0] o1, output wire [7:0] o2);
  blk_a u_a(.a(x), .y(o1));
  blk_b u_b(.a(x), .y(o2));
endmodule";
    let demo = Design::from_source("demo", DEMO_SRC, None).expect("load");
    Flow::with_db(cfg.clone(), db_a.clone())
        .run(&gcd)
        .expect("flow a");
    db_a.flush_store().expect("flush a");
    Flow::with_db(cfg.clone(), db_b.clone())
        .run(&demo)
        .expect("flow b");
    db_b.flush_store().expect("flush b");

    // A third process must serve BOTH designs entirely from disk: zero
    // recomputation for GCD proves writer B's flush did not clobber
    // writer A's records.
    let (_, gcd_window) = run_store_backed(&dir, &gcd);
    assert_eq!(
        gcd_window.misses, 0,
        "writer A's records must survive writer B's flush"
    );
    assert!(gcd_window.disk_hits > 0);
    let (_, demo_window) = run_store_backed(&dir, &demo);
    assert_eq!(demo_window.misses, 0, "writer B's records persist too");
    assert!(demo_window.disk_hits > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_flows_over_one_store_dir_stay_consistent() {
    let dir = store_dir("concurrent");
    let design = gcd_design();
    let baseline = {
        let (out, _) = run_store_backed(&dir, &design);
        let _ = std::fs::remove_dir_all(&dir);
        emitted(&out)
    };

    // Two threads each open their *own* store handle on one directory
    // and run concurrently — the cross-process interleaving a shared
    // cache directory sees in practice. Both must produce the golden
    // bytes, and the directory must end up readable and warm.
    let dir_a = dir.clone();
    let dir_b = dir.clone();
    let src = benchmarks::gcd::benchmark();
    let handle_a = std::thread::spawn(move || {
        let design = src.design().expect("load");
        let db = Arc::new(DesignDb::with_store(&dir_a).expect("open a"));
        let cfg = AliceConfig {
            jobs: 1,
            ..AliceConfig::cfg1()
        };
        let out = Flow::with_db(cfg, db.clone()).run(&design).expect("flow a");
        db.flush_store().expect("flush a");
        emitted(&out)
    });
    let handle_b = std::thread::spawn(move || {
        let design = gcd_design();
        let db = Arc::new(DesignDb::with_store(&dir_b).expect("open b"));
        let cfg = AliceConfig {
            jobs: 1,
            ..AliceConfig::cfg1()
        };
        let out = Flow::with_db(cfg, db.clone()).run(&design).expect("flow b");
        db.flush_store().expect("flush b");
        emitted(&out)
    });
    let out_a = handle_a.join().expect("thread a");
    let out_b = handle_b.join().expect("thread b");
    assert_eq!(out_a, baseline);
    assert_eq!(out_b, baseline);

    // Whoever flushed last, the surviving store serves a fully warm run.
    let (warm, window) = run_store_backed(&dir, &design);
    assert!(window.disk_hits > 0, "store survived concurrent writers");
    assert_eq!(window.misses, 0);
    assert_eq!(emitted(&warm), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}
