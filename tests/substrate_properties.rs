//! Property-based tests on the substrates: the SAT solver against a
//! brute-force reference, word-level gates against `u64` arithmetic, and
//! dominator trees against a naive reachability definition.

use alice_redaction::attacks::solver::{Lit, SatResult, Solver, Var};
use alice_redaction::dataflow::{DiGraph, DomTree};
use alice_redaction::netlist::ir::Netlist;
use alice_redaction::netlist::sim::Simulator;
use alice_redaction::netlist::words;
use alice_redaction::verilog::Bits;
use proptest::prelude::*;

/// Brute-force SAT check for small variable counts.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
    for assignment in 0u32..(1 << num_vars) {
        let ok = clauses.iter().all(|c| {
            c.iter().any(|&(v, neg)| {
                let val = (assignment >> v) & 1 == 1;
                val != neg
            })
        });
        if ok {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CDCL answers match brute force on random 3-SAT-ish instances.
    #[test]
    fn solver_matches_brute_force(
        clauses in prop::collection::vec(
            prop::collection::vec((0usize..8, any::<bool>()), 1..4),
            1..24
        )
    ) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        for c in &clauses {
            let lits: Vec<Lit> = c.iter().map(|&(v, neg)| Lit::new(vars[v], neg)).collect();
            s.add_clause(&lits);
        }
        let got = s.solve();
        let want = brute_force_sat(8, &clauses);
        match got {
            SatResult::Sat => {
                prop_assert!(want, "solver said SAT, brute force disagrees");
                // The model must actually satisfy every clause.
                for c in &clauses {
                    let ok = c.iter().any(|&(v, neg)| {
                        s.value(vars[v]).map(|b| b != neg).unwrap_or(false)
                    });
                    prop_assert!(ok, "model violates clause {c:?}");
                }
            }
            SatResult::Unsat => prop_assert!(!want, "solver said UNSAT, brute force disagrees"),
            SatResult::Unknown => prop_assert!(false, "no budget set, Unknown impossible"),
        }
    }

    /// Word-level arithmetic gates agree with u64 reference semantics.
    #[test]
    fn word_ops_match_u64(a in any::<u16>(), b in any::<u16>()) {
        let mut n = Netlist::new("t");
        let aw = n.add_input("a", 16);
        let bw = n.add_input("b", 16);
        let sum = words::add(&mut n, &aw, &bw);
        let diff = words::sub(&mut n, &aw, &bw);
        let prod = words::mul(&mut n, &aw, &bw);
        let lt = words::lt(&mut n, &aw, &bw);
        let eq = words::eq(&mut n, &aw, &bw);
        n.add_output("sum", sum);
        n.add_output("diff", diff);
        n.add_output("prod", prod);
        n.add_output("lt", vec![lt]);
        n.add_output("eq", vec![eq]);
        let mut sim = Simulator::new(&n);
        sim.set_input("a", &Bits::from_u64(a as u64, 16));
        sim.set_input("b", &Bits::from_u64(b as u64, 16));
        sim.settle();
        prop_assert_eq!(sim.output("sum").to_u64(), Some((a.wrapping_add(b)) as u64));
        prop_assert_eq!(sim.output("diff").to_u64(), Some((a.wrapping_sub(b)) as u64));
        prop_assert_eq!(sim.output("prod").to_u64(), Some((a.wrapping_mul(b)) as u64));
        prop_assert_eq!(sim.output("lt").to_u64(), Some((a < b) as u64));
        prop_assert_eq!(sim.output("eq").to_u64(), Some((a == b) as u64));
    }

    /// `dominates(a, b)` iff removing `a` cuts every path root→b.
    #[test]
    fn dominators_match_path_cutting(edges in prop::collection::vec((0usize..10, 0usize..10), 0..30)) {
        let n = 10;
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in &edges {
            if u != v {
                preds[v].push(u);
            }
        }
        let g = DiGraph { preds: preds.clone(), root: 0 };
        let dt = DomTree::compute(&g);
        // succ adjacency for reachability
        let reach = |skip: Option<usize>| -> Vec<bool> {
            let mut seen = vec![false; n];
            if skip == Some(0) {
                return seen;
            }
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(u) = stack.pop() {
                for v in 0..n {
                    if preds[v].contains(&u) && !seen[v] && skip != Some(v) {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            seen
        };
        let reachable = reach(None);
        for a in 0..n {
            for b in 0..n {
                if !reachable[a] || !reachable[b] || a == b {
                    continue;
                }
                let cut = !reach(Some(a))[b];
                prop_assert_eq!(
                    dt.dominates(a, b),
                    cut,
                    "a={} b={} edges={:?}", a, b, edges
                );
            }
        }
    }

    /// Bits round-trips through Verilog hex formatting and re-parsing.
    #[test]
    fn bits_hex_round_trip(v in any::<u64>(), w in 1u32..64) {
        let b = Bits::from_u64(v, w);
        let text = b.to_verilog();
        let src = format!("module m(output wire [{}:0] y); assign y = {text}; endmodule", w.max(1) - 1);
        let f = alice_redaction::verilog::parse_source(&src).expect("literal parses");
        let n = alice_redaction::netlist::elaborate(&f, "m").expect("elab");
        let mut sim = Simulator::new(&n);
        sim.settle();
        prop_assert_eq!(sim.output("y"), b);
    }
}
