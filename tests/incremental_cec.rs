//! Differential guard for the incremental keyed-miter CEC path: one
//! assumption-parameterized encoding answering the correct-key proof and
//! the whole wrong-key sweep must be *observationally identical* to the
//! classic pinned-constant path — same equivalence verdict, same per-key
//! corruption counts, same completeness — on GCD and DES3 with the
//! correct key plus 8 wrong keys. Only wall-clock may differ.
//!
//! A second guard drives `portfolio = 3` through the keyed miter:
//! racing diversified members inside the long-lived engine may change
//! which member answers, never what the answer is.
//!
//! SAT-heavy: ignored in debug builds, run by CI's release matrix entry.

use alice_redaction::benchmarks;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::flow::{Flow, FlowOutcome};
use alice_redaction::core::verify::VerifyOutcome;

fn verified_run(
    b: &benchmarks::Benchmark,
    incremental: bool,
    portfolio: usize,
    wrong_keys: usize,
) -> FlowOutcome {
    let d = b.design().expect("load");
    let cfg = AliceConfig {
        verify: true,
        verify_wrong_keys: wrong_keys,
        incremental_cec: incremental,
        portfolio,
        // Fixed worker count on both sides of each comparison, so the
        // sweep's slice partitioning is identical run-to-run.
        jobs: portfolio.max(2),
        ..b.config(AliceConfig::cfg1())
    };
    Flow::new(cfg).run(&d).expect("flow")
}

#[cfg_attr(debug_assertions, ignore = "SAT-heavy; run with --release")]
#[test]
fn incremental_sweep_matches_the_fresh_baseline() {
    for b in [benchmarks::gcd::benchmark(), benchmarks::des3::benchmark()] {
        let fresh = verified_run(&b, false, 1, 8);
        let inc = verified_run(&b, true, 1, 8);
        let vf = fresh.verify.as_ref().expect("verify ran");
        let vi = inc.verify.as_ref().expect("verify ran");
        assert_eq!(
            vf.outcome,
            VerifyOutcome::Equivalent,
            "{}: baseline verdict",
            b.name
        );
        assert_eq!(
            vi.outcome, vf.outcome,
            "{}: incremental path changed the verdict",
            b.name
        );
        assert_eq!(vf.wrong_keys.len(), 8, "{}", b.name);
        // `WrongKeyOutcome` equality covers the flipped bit sets, the
        // per-key corruption counts, the compared totals, and the
        // completeness flags — everything but timing.
        assert_eq!(
            vi.wrong_keys, vf.wrong_keys,
            "{}: per-key corruption differs between the paths",
            b.name
        );
        for wk in &vi.wrong_keys {
            assert!(wk.complete, "{}: sweep analyses must be exact", b.name);
            assert!(wk.corrupted <= wk.total, "{}", b.name);
        }
        // The sweep must have found corrupting keys, or the equality
        // above compared all-zero vectors and proves nothing.
        assert!(
            vi.wrong_keys.iter().any(|wk| wk.corrupted > 0),
            "{}: no wrong key corrupted anything — guard is vacuous",
            b.name
        );
    }
}

#[cfg_attr(debug_assertions, ignore = "SAT-heavy; run with --release")]
#[test]
fn portfolio_keyed_miter_agrees_with_single() {
    // `portfolio = 1` vs `3` through the incremental path: wrong keys
    // force the keyed miter, and the race happens *inside* the
    // long-lived engine via coherent member resets between assumption
    // solves.
    let b = benchmarks::gcd::benchmark();
    let p1 = verified_run(&b, true, 1, 8);
    let p3 = verified_run(&b, true, 3, 8);
    let v1 = p1.verify.as_ref().expect("verify ran");
    let v3 = p3.verify.as_ref().expect("verify ran");
    assert_eq!(v1.outcome, VerifyOutcome::Equivalent);
    assert_eq!(v3.outcome, v1.outcome, "portfolio changed the verdict");
    assert_eq!(
        v3.wrong_keys, v1.wrong_keys,
        "portfolio changed the sweep's corruption results"
    );
    assert!(v1.portfolio.is_none(), "classic width reports no race");
    let summary = v3.portfolio.as_ref().expect("raced proof has a summary");
    assert_eq!(summary.configs, 3);
    assert!(summary.winner < 3);
    assert!(
        summary.assumption_solves > 0,
        "the keyed miter answers by assumption solves"
    );
}
