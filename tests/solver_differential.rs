//! Differential test of the CDCL solver against brute-force enumeration
//! on random small CNF instances: SAT/UNSAT verdicts must agree, SAT
//! models must satisfy the formula, and the incremental assumption
//! interface must match brute force under the same pinned literals.
//!
//! Clause densities straddle the ~4.26 clauses/variable 3-SAT phase
//! transition so both verdicts occur, and instances are large enough to
//! exercise unit propagation, conflict analysis, clause learning, and
//! Luby restarts rather than pure backtracking.

use alice_redaction::attacks::solver::{Lit, SatResult, Solver, Var};
use alice_redaction::attacks::{PortfolioEngine, SatEngine};
use proptest::prelude::*;

struct Cnf {
    vars: usize,
    clauses: Vec<Vec<(usize, bool)>>, // (variable, negated)
}

/// Deterministic random CNF: `vars` ≤ 14 so brute force stays cheap.
fn random_cnf(seed: u64) -> Cnf {
    let mut rng = proptest::TestRng::deterministic(&format!("cnf-{seed}"));
    let vars = 3 + (rng.next_u64() % 12) as usize; // 3..=14
                                                   // Density sweeps 2..6 clauses/var across seeds: SAT-ish to UNSAT-ish.
    let clauses_n = vars * (2 + (seed % 5) as usize);
    let clauses = (0..clauses_n)
        .map(|_| {
            let width = 1 + (rng.next_u64() % 3) as usize; // 1..=3 literals
            (0..width)
                .map(|_| {
                    (
                        (rng.next_u64() % vars as u64) as usize,
                        rng.next_u64() & 1 == 1,
                    )
                })
                .collect()
        })
        .collect();
    Cnf { vars, clauses }
}

fn clause_satisfied(clause: &[(usize, bool)], assignment: u64) -> bool {
    clause
        .iter()
        .any(|&(v, neg)| ((assignment >> v) & 1 == 1) != neg)
}

/// Brute force: is there a satisfying assignment with `pinned` respected?
fn brute_force(cnf: &Cnf, pinned: &[(usize, bool)]) -> bool {
    'outer: for assignment in 0..(1u64 << cnf.vars) {
        for &(v, val) in pinned {
            if ((assignment >> v) & 1 == 1) != val {
                continue 'outer;
            }
        }
        if cnf.clauses.iter().all(|c| clause_satisfied(c, assignment)) {
            return true;
        }
    }
    false
}

fn load(cnf: &Cnf) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars = load_into(cnf, &mut s);
    (s, vars)
}

/// Loads `cnf` into any [`SatEngine`] — the portfolio runs the same
/// differential suite as the plain solver through this seam.
fn load_into(cnf: &Cnf, s: &mut dyn SatEngine) -> Vec<Var> {
    let vars: Vec<Var> = (0..cnf.vars).map(|_| s.new_var()).collect();
    for c in &cnf.clauses {
        let lits: Vec<Lit> = c.iter().map(|&(v, neg)| Lit::new(vars[v], neg)).collect();
        s.add_clause(&lits);
    }
    vars
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Unlimited-budget verdicts agree with brute force, and SAT models
    /// actually satisfy every clause.
    #[test]
    fn solver_agrees_with_brute_force(seed in 0u64..100_000) {
        let cnf = random_cnf(seed);
        let expect_sat = brute_force(&cnf, &[]);
        let (mut s, vars) = load(&cnf);
        match s.solve() {
            SatResult::Sat => {
                prop_assert!(expect_sat, "solver said SAT, brute force UNSAT");
                let mut assignment = 0u64;
                for (i, &v) in vars.iter().enumerate() {
                    if s.value(v) == Some(true) {
                        assignment |= 1 << i;
                    }
                }
                for c in &cnf.clauses {
                    prop_assert!(clause_satisfied(c, assignment), "model violates a clause");
                }
            }
            SatResult::Unsat => prop_assert!(!expect_sat, "solver said UNSAT, brute force SAT"),
            SatResult::Unknown => prop_assert!(false, "no budget set, Unknown impossible"),
        }
    }

    /// Assumption-based solving agrees with brute force under the same
    /// pins, and never corrupts the solver for later calls.
    #[test]
    fn assumptions_agree_with_brute_force(seed in 0u64..100_000) {
        let cnf = random_cnf(seed);
        let (mut s, vars) = load(&cnf);
        let mut rng = proptest::TestRng::deterministic(&format!("assume-{seed}"));
        for _ in 0..4 {
            let k = 1 + (rng.next_u64() % 3) as usize;
            let pinned: Vec<(usize, bool)> = (0..k)
                .map(|_| ((rng.next_u64() % cnf.vars as u64) as usize, rng.next_u64() & 1 == 1))
                .collect();
            // Contradictory duplicate pins make brute force UNSAT; the
            // solver must agree rather than wedge.
            let assumptions: Vec<Lit> = pinned.iter().map(|&(v, val)| Lit::new(vars[v], !val)).collect();
            let expect = brute_force(&cnf, &pinned);
            match s.solve_with(&assumptions) {
                SatResult::Sat => prop_assert!(expect),
                SatResult::Unsat => prop_assert!(!expect),
                SatResult::Unknown => prop_assert!(false, "no budget set"),
            }
        }
        // The formula itself must still answer consistently.
        let expect = brute_force(&cnf, &[]);
        prop_assert_eq!(s.solve() == SatResult::Sat, expect);
    }

    /// The incremental contract the keyed CEC miter rests on, stated
    /// directly: `solve_with(assumptions)` on one long-lived solver
    /// returns exactly the verdict a *fresh* solver is forced to when
    /// the same bits are added as unit clauses — across a sequence of
    /// assumption sets, with learned clauses and phase saving carrying
    /// over in between.
    #[test]
    fn assumptions_equal_unit_clause_pinning(seed in 0u64..100_000) {
        let cnf = random_cnf(seed);
        let (mut incremental, vars) = load(&cnf);
        let mut rng = proptest::TestRng::deterministic(&format!("pin-{seed}"));
        for _ in 0..4 {
            let k = 1 + (rng.next_u64() % 4) as usize;
            let pinned: Vec<(usize, bool)> = (0..k)
                .map(|_| ((rng.next_u64() % cnf.vars as u64) as usize, rng.next_u64() & 1 == 1))
                .collect();
            let assumptions: Vec<Lit> = pinned.iter().map(|&(v, val)| Lit::new(vars[v], !val)).collect();
            let got = incremental.solve_with(&assumptions);
            let (mut fresh, fvars) = load(&cnf);
            for &(v, val) in &pinned {
                fresh.add_clause(&[Lit::new(fvars[v], !val)]);
            }
            prop_assert_eq!(got, fresh.solve(), "pins {:?}", pinned);
        }
    }

    /// A conflict budget may only turn an answer into Unknown, never
    /// flip it; restarts under tiny budgets stay sound.
    #[test]
    fn budget_never_flips_the_verdict(seed in 0u64..50_000, budget in 1u64..64) {
        let cnf = random_cnf(seed);
        let expect_sat = brute_force(&cnf, &[]);
        let (mut s, _) = load(&cnf);
        s.conflict_budget = Some(budget);
        match s.solve() {
            SatResult::Sat => prop_assert!(expect_sat),
            SatResult::Unsat => prop_assert!(!expect_sat),
            SatResult::Unknown => {}
        }
    }

    /// The portfolio race passes the same differential suite as the
    /// plain solver: whichever diversified member wins, verdicts match
    /// brute force, models satisfy the formula, and assumption solving
    /// stays sound across races.
    #[test]
    fn portfolio_agrees_with_brute_force(seed in 0u64..100_000) {
        let cnf = random_cnf(seed);
        let expect_sat = brute_force(&cnf, &[]);
        let mut e = PortfolioEngine::new(3);
        let vars = load_into(&cnf, &mut e);
        match e.solve() {
            SatResult::Sat => {
                prop_assert!(expect_sat, "portfolio said SAT, brute force UNSAT");
                let mut assignment = 0u64;
                for (i, &v) in vars.iter().enumerate() {
                    if e.value(v) == Some(true) {
                        assignment |= 1 << i;
                    }
                }
                for c in &cnf.clauses {
                    prop_assert!(clause_satisfied(c, assignment), "winner's model violates a clause");
                }
            }
            SatResult::Unsat => prop_assert!(!expect_sat, "portfolio said UNSAT, brute force SAT"),
            SatResult::Unknown => prop_assert!(false, "no budget set, Unknown impossible"),
        }
        // Assumption round on the same engine, after the first race.
        let pin = ((seed % cnf.vars as u64) as usize, seed & 1 == 1);
        let expect = brute_force(&cnf, &[pin]);
        let r = e.solve_with(&[Lit::new(vars[pin.0], !pin.1)]);
        prop_assert_eq!(r == SatResult::Sat, expect);
    }

    /// A portfolio budget may only turn an answer into Unknown, and
    /// Unknown surfaces exactly when every member exhausts.
    #[test]
    fn portfolio_budget_never_flips_the_verdict(seed in 0u64..50_000, budget in 1u64..64) {
        let cnf = random_cnf(seed);
        let expect_sat = brute_force(&cnf, &[]);
        let mut e = PortfolioEngine::new(3);
        load_into(&cnf, &mut e);
        e.set_budget(Some(budget));
        match e.solve() {
            SatResult::Sat => prop_assert!(expect_sat),
            SatResult::Unsat => prop_assert!(!expect_sat),
            SatResult::Unknown => {}
        }
        // Lifting the budget restores the definitive verdict.
        e.set_budget(None);
        prop_assert_eq!(e.solve() == SatResult::Sat, expect_sat);
    }
}

/// A parity (XOR) chain forces deep conflict analysis and many restarts;
/// its satisfiability is known analytically.
#[test]
fn parity_chains_exercise_restarts() {
    for n in [8usize, 12, 14] {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        // x_i xor x_{i+1} = 1 for all i, plus x_0 = 0: satisfiable by
        // alternation; adding x_{n-1} = x_0's forced complement flipped
        // makes it UNSAT for even n.
        for w in vars.windows(2) {
            s.add_clause(&[Lit::pos(w[0]), Lit::pos(w[1])]);
            s.add_clause(&[Lit::neg(w[0]), Lit::neg(w[1])]);
        }
        s.add_clause(&[Lit::neg(vars[0])]);
        assert_eq!(s.solve(), SatResult::Sat, "n={n}");
        // Alternation: odd positions true.
        for (i, &v) in vars.iter().enumerate() {
            assert_eq!(s.value(v), Some(i % 2 == 1), "n={n} position {i}");
        }
        // Force the contradiction (x_{n-1} must be true for even n).
        s.add_clause(&[Lit::new(vars[n - 1], (n - 1) % 2 == 1)]);
        assert_eq!(s.solve(), SatResult::Unsat, "n={n} forced parity break");
    }
}
