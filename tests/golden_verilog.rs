//! Byte-identity golden tests for the flow's emitted Verilog.
//!
//! The hashes below were captured from the flow *before* the interned-
//! symbol / `DesignDb` refactor; the refactor (and any future one) must
//! keep the emitted redacted top and fabric netlists byte-identical.
//! Each design also runs twice against one shared [`DesignDb`], proving
//! a warm content-addressed cache changes nothing but the speed.

use alice_redaction::benchmarks;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::db::DesignDb;
use alice_redaction::core::flow::Flow;
use std::sync::Arc;

/// FNV-1a 64 over the emitted text (the fingerprint the golden hashes
/// below were captured with).
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `name` under `cfg` twice — cold then warm against the same
/// `DesignDb` — and checks both runs emit exactly the pinned bytes.
fn check(name: &str, cfg: AliceConfig, top_fnv: u64, fabric_fnv: u64) {
    let b = benchmarks::suite()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("no benchmark {name}"));
    let d = b.design().expect("load");
    let db = Arc::new(DesignDb::new());
    let mut after_cold = None;
    for pass in ["cold", "warm"] {
        let out = Flow::with_db(b.config(cfg.clone()), db.clone())
            .run(&d)
            .expect("flow");
        let rd = out.redacted.as_ref().expect("redacts");
        assert_eq!(
            fnv(&rd.top_asic_verilog()),
            top_fnv,
            "{name} {pass}: top ASIC Verilog drifted from the pre-refactor golden bytes"
        );
        assert_eq!(
            fnv(&rd.fabric_verilog),
            fabric_fnv,
            "{name} {pass}: fabric Verilog drifted from the pre-refactor golden bytes"
        );
        if pass == "cold" {
            after_cold = Some(db.counts());
        }
    }
    // The warm pass must be served entirely from the shared db: new hits,
    // no new computations (the cold pass's own intra-run hits don't
    // count — only the cross-run delta proves `with_db` sharing works).
    let warm = db.counts().since(after_cold.expect("cold pass ran"));
    assert!(
        warm.hits > 0,
        "{name}: the warm pass must hit the characterization cache"
    );
    assert_eq!(
        warm.misses, 0,
        "{name}: the warm pass must not recompute anything"
    );
}

#[test]
fn gcd_emitted_verilog_is_byte_identical_cfg1() {
    check(
        "GCD",
        AliceConfig::cfg1(),
        0x83f978115d5572c5,
        0xe1e95596a3fe1111,
    );
}

#[test]
fn gcd_emitted_verilog_is_byte_identical_cfg2() {
    check(
        "GCD",
        AliceConfig::cfg2(),
        0xded628ba0f39f0e7,
        0x9a648c16816ed562,
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "DES3 characterization is slow unoptimized; run with --release"
)]
fn des3_emitted_verilog_is_byte_identical_cfg1() {
    check(
        "DES3",
        AliceConfig::cfg1(),
        0x19e350d851aaee35,
        0x532eb08261483405,
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "DES3 characterization is slow unoptimized; run with --release"
)]
fn des3_emitted_verilog_is_byte_identical_cfg2() {
    check(
        "DES3",
        AliceConfig::cfg2(),
        0xe56665bf94988979,
        0x82ad3110db3bd260,
    );
}
