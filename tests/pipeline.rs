//! Integration tests for the staged, parallel pipeline: selection must be
//! deterministic across worker counts, infeasible configs must flow
//! through every stage without error, and the report must be derived from
//! the stage instrumentation.

use alice_redaction::benchmarks::generator::{generate, GeneratorParams};
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::design::Design;
use alice_redaction::core::flow::Flow;
use alice_redaction::core::select::select_efpgas;
use alice_redaction::core::stage;

fn synthetic_design() -> Design {
    // 6 leaves with mixed widths: enough clusters for the enumeration to
    // be non-trivial while staying fast.
    let src = generate(3, GeneratorParams::default());
    Design::from_source("synth", &src, None).expect("load")
}

#[test]
fn selection_is_deterministic_across_job_counts() {
    let design = synthetic_design();
    let base = AliceConfig::cfg1();
    let df = alice_redaction::dataflow::analyze(&design.file, design.hierarchy.top.as_str())
        .expect("dataflow");
    let r = alice_redaction::core::filter::filter_modules(&design, &df, &base)
        .expect("filter")
        .candidates;
    let clusters =
        alice_redaction::core::cluster::identify_clusters(&r, &design.paths, &base).clusters;
    assert!(!clusters.is_empty(), "test needs clusters to characterize");

    let run = |jobs: usize| {
        let cfg = AliceConfig {
            jobs,
            ..base.clone()
        };
        select_efpgas(
            &design,
            &r,
            &clusters,
            &cfg,
            &alice_redaction::core::db::DesignDb::new(),
        )
        .expect("select")
    };
    let serial = run(1);
    let parallel = run(4);

    // Byte-identical output: same valid set (clusters, fabrics, scores),
    // same failures, same enumeration, same best solution.
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    // And the key fields again, for a readable failure if Debug ever
    // diverges from semantics:
    assert_eq!(serial.solutions, parallel.solutions);
    assert_eq!(serial.valid.len(), parallel.valid.len());
    for (a, b) in serial.valid.iter().zip(&parallel.valid) {
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.score, b.score);
    }
    let (sb, pb) = (serial.best.expect("best"), parallel.best.expect("best"));
    assert_eq!(sb.efpgas, pb.efpgas);
    assert_eq!(sb.score, pb.score);
}

#[test]
fn full_flow_is_deterministic_across_job_counts() {
    let design = synthetic_design();
    let run = |jobs: usize| {
        Flow::new(AliceConfig {
            jobs,
            ..AliceConfig::cfg1()
        })
        .run(&design)
        .expect("flow")
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        format!("{:?}", serial.selection),
        format!("{:?}", parallel.selection)
    );
    let (sr, pr) = (&serial.redacted, &parallel.redacted);
    assert_eq!(sr.is_some(), pr.is_some());
    if let (Some(a), Some(b)) = (sr, pr) {
        assert_eq!(a.combined_verilog(), b.combined_verilog());
        let bits = |r: &alice_redaction::core::redact::RedactedDesign| -> Vec<Vec<bool>> {
            r.efpgas.iter().map(|e| e.config_stream.clone()).collect()
        };
        assert_eq!(bits(a), bits(b));
    }
}

#[test]
fn infeasible_config_flows_through_every_stage() {
    let design = synthetic_design();
    let cfg = AliceConfig {
        max_io_pins: 1, // nothing fits
        jobs: 4,
        ..AliceConfig::cfg1()
    };
    let out = Flow::new(cfg)
        .run(&design)
        .expect("infeasible is not an error");
    assert_eq!(out.report.candidates, 0);
    assert_eq!(out.report.clusters, 0);
    assert_eq!(out.report.valid_efpgas, 0);
    assert_eq!(out.report.solutions, 0);
    assert!(out.selection.best.is_none());
    assert!(out.redacted.is_none());
    // The staged path still ran (and timed) all five stages.
    let names: Vec<&str> = out.timings.records.iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        vec![
            stage::FILTER,
            stage::CLUSTER,
            stage::SELECT,
            stage::REDACT,
            stage::VERIFY
        ]
    );
}

#[test]
fn report_is_derived_from_phase_timings() {
    let design = synthetic_design();
    let out = Flow::new(AliceConfig::cfg1()).run(&design).expect("flow");
    assert_eq!(
        out.report.filter_time,
        out.timings.duration_of(stage::FILTER)
    );
    assert_eq!(
        out.report.cluster_time,
        out.timings.duration_of(stage::CLUSTER)
    );
    assert_eq!(
        out.report.select_time,
        out.timings.duration_of(stage::SELECT)
    );
    assert_eq!(out.report.candidates, out.timings.items_of(stage::FILTER));
    assert_eq!(out.report.clusters, out.timings.items_of(stage::CLUSTER));
    assert_eq!(out.report.valid_efpgas, out.timings.items_of(stage::SELECT));
}
