//! Cross-design characterization sharing on seeded generated benchmarks.
//!
//! The `DesignDb` keys are content-addressed (module source closures,
//! netlist structural hashes), not design-name-addressed: two *different
//! designs* containing textually identical modules must share every
//! elaboration, LUT mapping, and fabric characterization. The seeded
//! generator makes that scenario reproducible — exactly the workload of
//! the generator-driven `security` sweeps, which now point all their
//! flows at one shared db.

use alice_redaction::benchmarks::generator::{generate, GeneratorParams};
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::db::DesignDb;
use alice_redaction::core::design::Design;
use alice_redaction::core::flow::Flow;
use std::sync::Arc;

#[test]
fn cross_design_lutmap_hits_on_generated_benchmarks() {
    // Two designs, different names, same seeded source: every module is
    // textually identical across them, so B's flow must characterize
    // nothing.
    let src = generate(11, GeneratorParams::default());
    let design_a = Design::from_source("synth_a", &src, None).expect("load a");
    let design_b = Design::from_source("synth_b", &src, None).expect("load b");

    let db = Arc::new(DesignDb::new());
    let cfg = AliceConfig {
        jobs: 1,
        ..AliceConfig::cfg1()
    };
    let out_a = Flow::with_db(cfg.clone(), db.clone())
        .run(&design_a)
        .expect("flow a");
    let after_a = db.counts();
    assert!(after_a.misses > 0, "the cold design computes");

    let out_b = Flow::with_db(cfg, db.clone())
        .run(&design_b)
        .expect("flow b");
    let delta = db.counts().since(after_a);
    assert!(
        delta.hits > 0,
        "cross-design run must hit the shared cache (LUT maps included)"
    );
    assert_eq!(
        delta.misses, 0,
        "a textually identical design recomputes nothing"
    );

    // Same characterizations ⇒ same selection outcome.
    assert_eq!(out_b.report.candidates, out_a.report.candidates);
    assert_eq!(out_b.report.clusters, out_a.report.clusters);
    assert_eq!(out_b.report.solutions, out_a.report.solutions);
    assert_eq!(out_b.report.efpga_sizes, out_a.report.efpga_sizes);
}

#[test]
fn distinct_seeds_share_only_identical_shapes() {
    // Different seeds generate different leaf logic; the shared db must
    // key on content, so design C (a different seed) misses where its
    // modules differ — shared entries never leak wrong results across
    // designs.
    let src_a = generate(11, GeneratorParams::default());
    let src_c = generate(12, GeneratorParams::default());
    assert_ne!(src_a, src_c, "seeds must differ for this test to bite");
    let design_a = Design::from_source("synth_a", &src_a, None).expect("load a");
    let design_c = Design::from_source("synth_c", &src_c, None).expect("load c");

    let db = Arc::new(DesignDb::new());
    let cfg = AliceConfig {
        jobs: 1,
        ..AliceConfig::cfg1()
    };
    let out_a = Flow::with_db(cfg.clone(), db.clone())
        .run(&design_a)
        .expect("flow a");
    let after_a = db.counts();
    let out_c = Flow::with_db(cfg.clone(), db.clone())
        .run(&design_c)
        .expect("flow c");
    let delta = db.counts().since(after_a);
    assert!(delta.misses > 0, "different logic must be recomputed");

    // And each result matches a private, uncached run of the same design.
    let solo_c = Flow::new(cfg).run(&design_c).expect("solo c");
    assert_eq!(out_c.report.efpga_sizes, solo_c.report.efpga_sizes);
    assert_eq!(out_c.report.solutions, solo_c.report.solutions);
    assert!(out_a.report.solutions > 0, "sanity: flows found solutions");
}
