//! Deep-hierarchy redaction: DES3's S-boxes live two levels down
//! (`des3.u_crp.u_s1`...), so redacting them exercises module
//! uniquification, port punching through `crp`, and config-pin
//! propagation to the top — the §6 machinery around the dominator-guided
//! insertion point.

use alice_redaction::benchmarks;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::flow::Flow;
use alice_redaction::netlist::elaborate;
use alice_redaction::netlist::sim::Simulator;
use alice_redaction::verilog::{parse_source, Bits};
use alice_verilog::hierarchy::build_hierarchy;

/// Elaborating the redacted DES3 resolves a 192-LE configuration chain
/// demand-first, which recurses deeper than the default test stack in
/// debug builds; run the body on a roomy thread.
fn with_big_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("test body");
}

#[test]
fn des3_redaction_punches_through_crp() {
    with_big_stack(des3_redaction_punches_through_crp_impl);
}

fn des3_redaction_punches_through_crp_impl() {
    let b = benchmarks::des3::benchmark();
    let d = b.design().expect("load");
    let out = Flow::new(b.config(AliceConfig::cfg2()))
        .run(&d)
        .expect("flow");
    let redacted = out.redacted.as_ref().expect("cfg2 redacts all sboxes");
    assert_eq!(redacted.efpgas.len(), 1);
    let e = &redacted.efpgas[0];
    assert_eq!(e.instances.len(), 8, "all eight S-boxes");
    assert_eq!(
        e.insertion_point, "des3.u_crp",
        "LCA is inside the hierarchy"
    );

    // The regenerated design must parse and re-elaborate its hierarchy.
    let combined = redacted.combined_verilog();
    let parsed = parse_source(&combined).expect("combined parses");
    let h = build_hierarchy(&parsed, Some("des3")).expect("hierarchy rebuilds");
    // The S-box instances are gone; the fabric instance exists under crp.
    let paths: Vec<&str> = h.tree.walk().iter().map(|n| n.path.as_str()).collect();
    assert!(
        paths.iter().any(|p| p.contains("u_alice_efpga0")),
        "{paths:?}"
    );
    assert!(
        !paths.iter().any(|p| p.ends_with(".u_s1")),
        "S-box instances must be removed: {paths:?}"
    );
    // Config pins surface on the top module.
    let top = parsed.module("des3").expect("top");
    for p in ["cfg_clk", "cfg_en", "cfg_in_e0", "cfg_out_e0"] {
        assert!(top.port(p).is_some(), "missing top port {p}");
    }
}

/// Configure the redacted DES3 and check it encrypts exactly like the
/// original — the full "foundry gets blanks, user restores function"
/// story on a hierarchical design.
#[test]
fn configured_des3_matches_original() {
    with_big_stack(configured_des3_matches_original_impl);
}

fn configured_des3_matches_original_impl() {
    let b = benchmarks::des3::benchmark();
    let d = b.design().expect("load");
    let out = Flow::new(b.config(AliceConfig::cfg2()))
        .run(&d)
        .expect("flow");
    let redacted = out.redacted.as_ref().expect("redacts");
    let e = &redacted.efpgas[0];

    let combined = redacted.combined_verilog();
    let parsed = parse_source(&combined).expect("parse");
    let chip = elaborate(&parsed, "des3").expect("elaborate redacted chip");
    let original = elaborate(&d.file, "des3").expect("elaborate original");

    let mut sim = Simulator::new(&chip);
    // Shift the bitstream in.
    sim.set_input("cfg_en", &Bits::from_u64(1, 1));
    for &bit in &e.config_stream {
        sim.set_input("cfg_in_e0", &Bits::from_u64(bit as u64, 1));
        sim.step();
    }
    sim.set_input("cfg_en", &Bits::from_u64(0, 1));

    let run = |sim: &mut Simulator, key: u64, din: u64| -> Bits {
        sim.set_input("rst", &Bits::from_u64(1, 1));
        sim.set_input("start", &Bits::from_u64(0, 1));
        sim.step();
        sim.set_input("rst", &Bits::from_u64(0, 1));
        sim.set_input("d_in", &Bits::from_u64(din, 64));
        sim.set_input("key", &Bits::from_u64(key, 168));
        sim.set_input("start", &Bits::from_u64(1, 1));
        sim.step();
        sim.set_input("start", &Bits::from_u64(0, 1));
        for _ in 0..80 {
            sim.step();
            if sim.output("valid").to_u64() == Some(1) {
                break;
            }
        }
        assert_eq!(sim.output("valid").to_u64(), Some(1), "must finish");
        sim.output("d_out")
    };
    let mut reference = Simulator::new(&original);
    for (key, din) in [
        (0xdead_beef_u64, 0x0123_4567_89ab_cdef_u64),
        (0x1357_9bdf, 0xfeed_face_cafe_f00d),
        (0, 0),
    ] {
        let got = run(&mut sim, key, din);
        let want = run(&mut reference, key, din);
        assert_eq!(got, want, "key={key:#x} din={din:#x}");
    }
}
