//! Property-based tests: flow invariants on randomly generated designs
//! plus substrate-level round-trip properties.

use alice_redaction::benchmarks::generator::{generate, GeneratorParams};
use alice_redaction::core::cluster::identify_clusters;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::design::Design;
use alice_redaction::core::filter::filter_modules;
use alice_redaction::core::flow::Flow;
use alice_redaction::verilog::{parse_source, print_source};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The printer's output always re-parses to the same AST (the property
    /// the redaction back-end relies on).
    #[test]
    fn printer_round_trip_on_synthetic_designs(seed in 0u64..5000) {
        let src = generate(seed, GeneratorParams::default());
        let f1 = parse_source(&src).expect("generated designs parse");
        let text = print_source(&f1);
        let f2 = parse_source(&text).expect("printed output parses");
        prop_assert_eq!(f1, f2);
    }

    /// Candidates returned by filtering always satisfy both criteria:
    /// positive score and the structural pin bound.
    #[test]
    fn filter_respects_structural_bound(seed in 0u64..5000, max_io in 8u32..80) {
        let src = generate(seed, GeneratorParams::default());
        let d = Design::from_source("synth", &src, None).expect("load");
        let df = alice_redaction::dataflow::analyze(&d.file, d.hierarchy.top.as_str()).expect("df");
        let cfg = AliceConfig { max_io_pins: max_io, ..AliceConfig::default() };
        let r = filter_modules(&d, &df, &cfg).expect("filter");
        for c in &r.candidates {
            prop_assert!(c.io_pins <= max_io);
            prop_assert!(c.score >= 1);
        }
        // candidates ⊆ functional
        prop_assert!(r.candidates.len() <= r.functional.len());
    }

    /// Every cluster from Algorithm 2 is admissible and unique; singletons
    /// are always present.
    #[test]
    fn clusters_are_admissible_and_unique(seed in 0u64..5000, max_io in 16u32..128) {
        let src = generate(seed, GeneratorParams::default());
        let d = Design::from_source("synth", &src, None).expect("load");
        let df = alice_redaction::dataflow::analyze(&d.file, d.hierarchy.top.as_str()).expect("df");
        let cfg = AliceConfig { max_io_pins: max_io, ..AliceConfig::default() };
        let r = filter_modules(&d, &df, &cfg).expect("filter").candidates;
        let c = identify_clusters(&r, &d.paths, &cfg);
        let mut seen = std::collections::BTreeSet::new();
        for cluster in &c.clusters {
            prop_assert!(seen.insert(cluster.clone()), "duplicate cluster");
            let pins: u32 = cluster.iter().map(|&i| r[i].io_pins).sum();
            prop_assert!(pins <= max_io);
        }
        // Every candidate appears as a singleton.
        for i in 0..r.len() {
            let singleton: std::collections::BTreeSet<usize> = [i].into_iter().collect();
            prop_assert!(c.clusters.contains(&singleton));
        }
    }

    /// The full flow never panics on generated designs and, when it finds a
    /// solution, the solution's clusters are disjoint.
    #[test]
    fn flow_solutions_are_disjoint(seed in 0u64..2000) {
        let src = generate(seed, GeneratorParams { leaves: 5, ..GeneratorParams::default() });
        let d = Design::from_source("synth", &src, None).expect("load");
        let out = Flow::new(AliceConfig::cfg1()).run(&d).expect("flow");
        if let Some(best) = &out.selection.best {
            let mut used = std::collections::BTreeSet::new();
            for &i in &best.efpgas {
                for &m in &out.selection.valid[i].cluster {
                    prop_assert!(used.insert(m), "overlapping instance in solution");
                }
            }
            prop_assert!(best.efpgas.len() <= 2, "cfg1 allows at most two eFPGAs");
        }
    }

    /// Bitstream length is a function of fabric geometry alone.
    #[test]
    fn bitstream_length_matches_model(dim in 1u32..12) {
        use alice_redaction::fabric::{bitstream, FabricArch, FabricSize};
        let arch = FabricArch::default();
        let size = FabricSize::square(dim);
        let expected = bitstream::expected_len(&arch, size);
        let empty = alice_redaction::netlist::MappedNetlist::default();
        let packing = alice_redaction::fabric::Packing::default();
        let bs = bitstream::generate(&empty, &packing, &arch, size);
        prop_assert_eq!(bs.len(), expected);
    }
}

#[test]
fn flow_on_generated_design_with_redaction_round_trip() {
    // One deeper check outside proptest: redact a generated design and
    // re-parse the combined output.
    let src = generate(11, GeneratorParams::default());
    let d = Design::from_source("synth", &src, None).expect("load");
    let out = Flow::new(AliceConfig::cfg1()).run(&d).expect("flow");
    if let Some(r) = &out.redacted {
        let parsed = parse_source(&r.combined_verilog()).expect("round trip");
        assert!(parsed.module("synth_top").is_some());
    }
}
