//! Cross-crate integration tests: the full ALICE flow on the paper's
//! benchmark suite, with the Table 2 shape assertions from DESIGN.md.

use alice_redaction::benchmarks;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::flow::Flow;

#[test]
fn iir_is_infeasible_under_cfg1_but_solved_under_cfg2() {
    let b = benchmarks::iir::benchmark();
    let d = b.design().expect("load");
    let cfg1 = Flow::new(b.config(AliceConfig::cfg1()))
        .run(&d)
        .expect("flow");
    assert_eq!(cfg1.report.candidates, 0, "min module I/O is 66 > 64");
    assert!(cfg1.redacted.is_none());

    let cfg2 = Flow::new(b.config(AliceConfig::cfg2()))
        .run(&d)
        .expect("flow");
    assert_eq!(cfg2.report.candidates, 2);
    assert_eq!(cfg2.report.clusters, 2);
    assert_eq!(cfg2.report.solutions, 2);
    let sizes = &cfg2.report.efpga_sizes;
    assert_eq!(sizes.len(), 1);
    assert!(
        sizes[0].width >= 14,
        "single large fabric, got {}",
        sizes[0]
    );
}

#[test]
fn des3_cluster_counts_match_table2_exactly() {
    let b = benchmarks::des3::benchmark();
    let d = b.design().expect("load");
    let cfg1 = Flow::new(b.config(AliceConfig::cfg1()))
        .run(&d)
        .expect("flow");
    // Sum of C(8,k) for k = 1..=5 — five 12-pin S-boxes fit 64 pins.
    assert_eq!(cfg1.report.clusters, 218);
    assert_eq!(cfg1.report.candidates, 8);
    let cfg2 = Flow::new(b.config(AliceConfig::cfg2()))
        .run(&d)
        .expect("flow");
    // 2^8 - 1 — all eight S-boxes fit 96 pins.
    assert_eq!(cfg2.report.clusters, 255);
    // cfg2 redacts all eight S-boxes on one fabric (paper: 14x14).
    assert_eq!(cfg2.report.redacted_modules, 8);
    assert_eq!(cfg2.report.efpga_sizes[0].to_string(), "14x14");
}

#[test]
fn gcd_two_small_fabrics_vs_one_larger() {
    let b = benchmarks::gcd::benchmark();
    let d = b.design().expect("load");
    let cfg1 = Flow::new(b.config(AliceConfig::cfg1()))
        .run(&d)
        .expect("flow");
    assert_eq!(
        cfg1.report.candidates, 9,
        "swap (68 pins) excluded, lzc unranked"
    );
    assert_eq!(cfg1.report.efpga_sizes.len(), 2, "two eFPGAs under cfg1");
    let cfg2 = Flow::new(b.config(AliceConfig::cfg2()))
        .run(&d)
        .expect("flow");
    assert_eq!(cfg2.report.candidates, 10);
    assert_eq!(cfg2.report.efpga_sizes.len(), 1, "one eFPGA under cfg2");
    // The single cfg2 fabric is at least as large as each cfg1 fabric.
    let max1 = cfg1
        .report
        .efpga_sizes
        .iter()
        .map(|s| s.clbs())
        .max()
        .expect("two");
    assert!(cfg2.report.efpga_sizes[0].clbs() >= max1);
}

#[test]
fn single_candidate_designs_have_single_solutions() {
    for (bench, expect_r) in [
        (benchmarks::fir::benchmark(), 1usize),
        (benchmarks::sha256::benchmark(), 1),
        (benchmarks::sasc::benchmark(), 1),
    ] {
        let d = bench.design().expect("load");
        let out = Flow::new(bench.config(AliceConfig::cfg1()))
            .run(&d)
            .expect("flow");
        assert_eq!(out.report.candidates, expect_r, "{}", bench.name);
        assert_eq!(out.report.clusters, 1, "{}", bench.name);
        assert_eq!(out.report.solutions, 1, "{}", bench.name);
        assert_eq!(out.report.redacted_modules, 1, "{}", bench.name);
    }
}

#[test]
fn usb_phy_characterizes_every_cluster() {
    // The tx PHY's data-dependent divider (`period / rate`) used to fail
    // characterization; the restoring-divider lowering makes all three
    // clusters viable.
    let b = benchmarks::usb_phy::benchmark();
    let d = b.design().expect("load");
    for cfg in [AliceConfig::cfg1(), AliceConfig::cfg2()] {
        let out = Flow::new(b.config(cfg)).run(&d).expect("flow");
        assert_eq!(out.report.candidates, 2, "rx and tx in the cones");
        assert_eq!(out.report.clusters, 3, "two singles plus the pair");
        assert_eq!(out.report.valid_efpgas, 3, "every cluster characterizes");
        assert_eq!(out.selection.failed.len(), 0, "no characterization errors");
        assert!(out.report.solutions >= 1);
        assert!(out.redacted.is_some());
    }
}

#[test]
fn every_redacted_design_reparses_with_its_fabrics() {
    for b in benchmarks::suite() {
        let d = b.design().expect("load");
        let out = Flow::new(b.config(AliceConfig::cfg2()))
            .run(&d)
            .expect("flow");
        let Some(redacted) = &out.redacted else {
            continue;
        };
        let combined = redacted.combined_verilog();
        let parsed = alice_redaction::verilog::parse_source(&combined)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        // The fabric module exists and the secret never leaks: the fabric
        // netlist must carry no constants beyond 1-bit ties (LUT tables
        // arrive only through the config chain).
        for e in &redacted.efpgas {
            assert!(
                parsed.module(e.module_name.as_str()).is_some(),
                "{}",
                b.name
            );
            assert!(!e.config_stream.is_empty(), "{}", b.name);
        }
        assert!(
            !redacted.fabric_verilog.contains("16'h"),
            "{}: LUT INIT leaked into the fabric netlist",
            b.name
        );
    }
}

#[test]
fn selection_scores_favor_utilization_by_default() {
    let b = benchmarks::gcd::benchmark();
    let d = b.design().expect("load");
    let out = Flow::new(b.config(AliceConfig::cfg2()))
        .run(&d)
        .expect("flow");
    let best = out.selection.best.as_ref().expect("solution");
    // Every chosen fabric must beat the median utilization of valid ones.
    let mut utils: Vec<f64> = out
        .selection
        .valid
        .iter()
        .map(|v| v.efpga.io_util + v.efpga.clb_util)
        .collect();
    utils.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = utils[utils.len() / 2];
    for &i in &best.efpgas {
        let v = &out.selection.valid[i];
        assert!(
            v.efpga.io_util + v.efpga.clb_util >= median,
            "chosen fabric below median utilization"
        );
    }
}
