//! Security evaluation: mount the oracle-guided SAT attack of the paper's
//! threat model (§2.1, reference [16]) against redacted clusters of
//! different sizes, showing how bitstream length and attack effort grow
//! with the fabric.
//!
//! ```text
//! cargo run --release --example sat_resilience
//! ```

use alice_redaction::attacks::{sat_attack, AttackBudget, AttackStatus};
use alice_redaction::netlist::{elaborate, map_luts};
use alice_redaction::verilog::parse_source;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three cluster sizes: a toy function, a datapath slice, a multiplier.
    let designs = [
        (
            "toy",
            "module toy(input wire [3:0] a, output wire y);\
             assign y = (a[0] & a[1]) | (a[2] ^ a[3]); endmodule",
        ),
        (
            "adder8",
            "module adder8(input wire [7:0] a, input wire [7:0] b, output wire [8:0] y);\
             assign y = {1'b0, a} + {1'b0, b}; endmodule",
        ),
        (
            "mul8",
            "module mul8(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);\
             assign y = a * b; endmodule",
        ),
    ];
    let budget = AttackBudget {
        max_dips: 300,
        conflicts_per_call: 50_000,
    };
    println!(
        "{:<8} {:>6} {:>9} {:>6} {:>10} {:>9}",
        "design", "LUTs", "key bits", "DIPs", "conflicts", "status"
    );
    for (name, src) in designs {
        let file = parse_source(src)?;
        let netlist = elaborate(&file, name)?;
        let mapped = map_luts(&netlist, 4)?;
        let report = sat_attack(&mapped, budget);
        let status = match report.status {
            AttackStatus::KeyRecovered { .. } => "BROKEN",
            AttackStatus::Resilient => "resilient",
        };
        println!(
            "{:<8} {:>6} {:>9} {:>6} {:>10} {:>9}",
            name,
            mapped.lut_count(),
            report.key_bits,
            report.dips,
            report.conflicts,
            status
        );
    }
    println!("\n(The paper's security argument: resilience grows with the");
    println!("configuration-bit count and I/O complexity of the fabric, which");
    println!("is why ALICE maximizes fabric utilization during selection.)");
    Ok(())
}
