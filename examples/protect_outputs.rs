//! Output-driven redaction: protect *selected* outputs of a design, the
//! scenario motivating Algorithm 1 ("designers can provide a list of
//! outputs that they want to protect").
//!
//! Runs the SASC UART twice: protecting the transmit line (`so_data`,
//! which only the TX FIFO influences) and then the receive path — and
//! shows how the candidate set follows the dataflow cones.
//!
//! ```text
//! cargo run --example protect_outputs
//! ```

use alice_redaction::benchmarks;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::flow::Flow;
use alice_redaction::dataflow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmarks::sasc::benchmark();
    let design = bench.design()?;

    // Inspect the cones first.
    let df = dataflow::analyze(&design.file, design.hierarchy.top.as_str())?;
    for output in ["so_data", "rx_dout", "baud_o"] {
        println!("cone of `{output}`: {:?}", df.cone_of(output)?);
    }

    for outputs in [vec!["so_data".to_string()], vec!["rx_dout".to_string()]] {
        let config = AliceConfig {
            selected_outputs: outputs.clone(),
            ..AliceConfig::cfg1()
        };
        let outcome = Flow::new(config).run(&design)?;
        println!(
            "\nprotecting {outputs:?}: |R| = {}, redacted = {:?}",
            outcome.report.candidates,
            outcome
                .redacted
                .iter()
                .flat_map(|r| r.efpgas.iter())
                .flat_map(|e| e.instances.clone())
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}
