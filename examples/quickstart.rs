//! Quickstart: run the full ALICE flow on the GCD benchmark and print the
//! redaction summary.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use alice_redaction::benchmarks;
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::flow::Flow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Load a benchmark design (Verilog in, hierarchy out).
    let bench = benchmarks::gcd::benchmark();
    let design = bench.design()?;
    println!(
        "design `{}`: top {}, {} redactable instances",
        design.name,
        design.hierarchy.top,
        design.instance_paths().len()
    );

    // cfg1 from the paper: at most 64 I/O pins per cluster, two eFPGAs.
    let config = bench.config(AliceConfig::cfg1());
    let outcome = Flow::new(config).run(&design)?;

    println!("|R| = {} candidate modules", outcome.report.candidates);
    println!("|C| = {} candidate clusters", outcome.report.clusters);
    println!(
        "{} valid eFPGAs, |S| = {} solutions",
        outcome.report.valid_efpgas, outcome.report.solutions
    );

    let Some(redacted) = &outcome.redacted else {
        println!("no feasible redaction under this configuration");
        return Ok(());
    };
    for e in &redacted.efpgas {
        println!(
            "eFPGA {} ({}): redacts {:?} at `{}`, {} config bits (secret)",
            e.module_name,
            e.size,
            e.instances,
            e.insertion_point,
            e.bitstream.len()
        );
    }
    println!(
        "redacted top ASIC module: {} lines of Verilog",
        redacted.top_asic_verilog().lines().count()
    );
    Ok(())
}
