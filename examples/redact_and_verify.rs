//! End-to-end redaction with functional verification: redact a design,
//! parse the regenerated Verilog (top ASIC + fabric netlists), shift the
//! configuration bitstream through the chain, and prove the configured
//! chip matches the original gate-for-gate — the property the legitimate
//! user relies on after fabrication.
//!
//! ```text
//! cargo run --example redact_and_verify
//! ```

use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::design::Design;
use alice_redaction::core::flow::Flow;
use alice_redaction::netlist::elaborate;
use alice_redaction::netlist::sim::Simulator;
use alice_redaction::verilog::{parse_source, Bits};

const SRC: &str = r#"
module mixer(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);
  assign y = (a ^ b) + {b[3:0], a[7:4]};
endmodule
module scaler(input wire [7:0] a, output wire [7:0] y);
  assign y = (a << 2) | (a >> 5);
endmodule
module top(input wire [7:0] p, input wire [7:0] q,
           output wire [7:0] o1, output wire [7:0] o2);
  mixer u_mix(.a(p), .b(q), .y(o1));
  scaler u_scale(.a(p), .y(o2));
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = Design::from_source("demo", SRC, None)?;
    let outcome = Flow::new(AliceConfig::cfg1()).run(&design)?;
    let redacted = outcome.redacted.as_ref().expect("demo always redacts");
    println!(
        "redacted {:?} into {} eFPGA(s)",
        redacted
            .efpgas
            .iter()
            .flat_map(|e| e.instances.clone())
            .collect::<Vec<_>>(),
        redacted.efpgas.len()
    );

    // The foundry's view: redacted top + unconfigured fabrics.
    let combined = redacted.combined_verilog();
    let file = parse_source(&combined)?;
    let chip = elaborate(&file, "top")?;
    let original = elaborate(&design.file, "top")?;

    // The user's step: shift each bitstream into its chain.
    let mut sim = Simulator::new(&chip);
    sim.set_input("cfg_en", &Bits::from_u64(1, 1));
    let total = redacted
        .efpgas
        .iter()
        .map(|e| e.config_stream.len())
        .max()
        .unwrap_or(0);
    for t in 0..total {
        for (i, e) in redacted.efpgas.iter().enumerate() {
            let lead = total - e.config_stream.len();
            let bit = if t >= lead {
                e.config_stream[t - lead]
            } else {
                false
            };
            sim.set_input(&format!("cfg_in_e{i}"), &Bits::from_u64(bit as u64, 1));
        }
        sim.step();
    }
    sim.set_input("cfg_en", &Bits::from_u64(0, 1));
    println!("configured {total} bit config chain");

    // Compare against the original on exhaustive-ish input sweeps.
    let mut reference = Simulator::new(&original);
    let mut checked = 0u32;
    for p in (0..=255u64).step_by(7) {
        for q in (0..=255u64).step_by(11) {
            sim.set_input("p", &Bits::from_u64(p, 8));
            sim.set_input("q", &Bits::from_u64(q, 8));
            sim.settle();
            reference.set_input("p", &Bits::from_u64(p, 8));
            reference.set_input("q", &Bits::from_u64(q, 8));
            reference.settle();
            assert_eq!(sim.output("o1"), reference.output("o1"), "o1 @ p={p} q={q}");
            assert_eq!(sim.output("o2"), reference.output("o2"), "o2 @ p={p} q={q}");
            checked += 1;
        }
    }
    println!("configured chip matches the original on {checked} input vectors");
    println!("(without the bitstream, the fabric computes all-zero functions)");
    Ok(())
}
