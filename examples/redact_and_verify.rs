//! End-to-end redaction with *proven* functional verification: redact a
//! design and let the flow's CEC verify stage build a SAT miter of the
//! regenerated Verilog (top ASIC + fabric netlists) against the
//! original, with the configuration registers pinned to the correct
//! bitstream — a proof over all inputs, not a simulation sweep. A
//! wrong-key pass then shows the converse: corrupt bitstreams provably
//! corrupt outputs.
//!
//! ```text
//! cargo run --example redact_and_verify
//! ```

use alice_redaction::cec::{CecResult, Miter, MiterOptions};
use alice_redaction::core::config::AliceConfig;
use alice_redaction::core::design::Design;
use alice_redaction::core::flow::Flow;
use alice_redaction::netlist::elaborate;
use alice_redaction::verilog::parse_source;

const SRC: &str = r#"
module mixer(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);
  assign y = (a ^ b) + {b[3:0], a[7:4]};
endmodule
module scaler(input wire [7:0] a, output wire [7:0] y);
  assign y = (a << 2) | (a >> 5);
endmodule
module top(input wire [7:0] p, input wire [7:0] q,
           output wire [7:0] o1, output wire [7:0] o2);
  mixer u_mix(.a(p), .b(q), .y(o1));
  scaler u_scale(.a(p), .y(o2));
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = Design::from_source("demo", SRC, None)?;
    // `verify: true` appends the CEC stage to the pipeline; the wrong-key
    // sweep flips truth-table bits and measures provable corruption.
    let cfg = AliceConfig {
        verify: true,
        verify_wrong_keys: 3,
        ..AliceConfig::cfg1()
    };
    let outcome = Flow::new(cfg).run(&design)?;
    let redacted = outcome.redacted.as_ref().expect("demo always redacts");
    println!(
        "redacted {:?} into {} eFPGA(s)",
        redacted
            .efpgas
            .iter()
            .flat_map(|e| e.instances.clone())
            .collect::<Vec<_>>(),
        redacted.efpgas.len()
    );

    let verify = outcome.verify.as_ref().expect("verify stage ran");
    println!(
        "CEC: {} over {} difference points ({} vars, {} clauses)",
        verify.outcome, verify.diff_points, verify.cnf_vars, verify.cnf_clauses
    );
    assert!(verify.outcome.is_equivalent(), "redaction must be correct");
    for wk in &verify.wrong_keys {
        println!(
            "wrong bitstream (flipping {} key bit(s)): {}/{} outputs provably corrupted",
            wk.flipped.len(),
            wk.corrupted,
            wk.total
        );
    }

    // The same check through the raw `alice-cec` API: an *unconfigured*
    // attacker view — every configuration register left free — is NOT
    // equivalent: some key assignment corrupts some output.
    let golden = elaborate(&design.file, "top")?;
    let revised = elaborate(&parse_source(&redacted.combined_verilog())?, "top")?;
    let mut opts = MiterOptions::default();
    opts.pin_inputs
        .push((alice_intern::Symbol::intern("cfg_en"), vec![false]));
    for e in &redacted.efpgas {
        // Pair the fabric flip-flops with the registers they replaced,
        // but leave `cfg` registers free instead of pinning the secret.
        opts.state_rename
            .extend(e.binding.state_map.iter().copied());
    }
    match Miter::build(&golden, &revised, &opts)?.prove() {
        CecResult::NotEquivalent(cex) => println!(
            "free-key miter: NOT equivalent, witness corrupts {:?} (as redaction intends)",
            cex.diffs
        ),
        other => println!("free-key miter: unexpected verdict {other:?}"),
    }
    println!("(the correct bitstream is the only thing separating the two results)");
    Ok(())
}
